"""Tests for topology models, routing, and rank mappings."""

import pytest

from repro.topology import (
    AllocationSampler,
    Dragonfly,
    DragonflyPlus,
    FatTree,
    LinkClass,
    MultiRankNodes,
    SystemShape,
    Torus,
    allocation_mapping,
    block_mapping,
    hostname_sorted,
)


class TestFatTree:
    def test_groups(self):
        ft = FatTree(4, 2, 2.0)
        assert ft.num_nodes == 8
        assert [ft.group_of(i) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
        assert ft.num_groups == 4

    def test_intra_subtree_route_local(self):
        ft = FatTree(4, 2, 2.0)
        route = ft.route(0, 1)
        assert len(route) == 1 and route[0].cls == LinkClass.LOCAL

    def test_inter_subtree_route_global(self):
        ft = FatTree(4, 2, 2.0)
        route = ft.route(0, 7)
        assert [l.cls for l in route] == [LinkClass.GLOBAL, LinkClass.GLOBAL]

    def test_uplink_width_matches_oversubscription(self):
        ft = FatTree(12, 160, 2.0)
        assert ft.uplinks_per_subtree == 80
        up = ft.route(0, 200)[0]
        assert up.width == 80

    def test_self_route_empty(self):
        assert FatTree(2, 2).route(1, 1) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            FatTree(0, 4)
        with pytest.raises(ValueError):
            FatTree(4, 4, 0.5)


class TestDragonfly:
    def test_group_crossing(self):
        df = Dragonfly(4, 8)
        assert df.crosses_groups(0, 8)
        assert not df.crosses_groups(0, 7)

    def test_global_route_one_global_hop(self):
        df = Dragonfly(4, 8, links_per_group_pair=5)
        route = df.route(0, 9)
        classes = [l.cls for l in route]
        assert classes.count(LinkClass.GLOBAL) == 1
        glob = [l for l in route if l.cls == LinkClass.GLOBAL][0]
        assert glob.width == 5

    def test_group_pair_link_shared_both_directions(self):
        df = Dragonfly(4, 8)
        g1 = [l for l in df.route(0, 9) if l.cls == LinkClass.GLOBAL][0]
        g2 = [l for l in df.route(9, 0) if l.cls == LinkClass.GLOBAL][0]
        assert g1.key == g2.key

    def test_dragonfly_plus_same_grouping(self):
        dfp = DragonflyPlus(23, 180)
        assert dfp.num_nodes == 23 * 180
        assert dfp.group_of(180) == 1

    def test_hops(self):
        df = Dragonfly(4, 8)
        local, global_ = df.hops(0, 9)
        assert global_ == 1 and local == 2


class TestTorus:
    def test_coords_roundtrip(self):
        t = Torus((4, 3, 2))
        for node in range(t.num_nodes):
            assert t.node_at(t.coords(node)) == node

    def test_minimal_routing_wraps(self):
        t = Torus((8,))
        # 0 -> 6 should go backwards (2 hops), not forwards (6 hops)
        assert len(t.route(0, 6)) == 2

    def test_route_length_equals_distance(self):
        t = Torus((4, 4))
        for a in range(16):
            for b in range(16):
                assert len(t.route(a, b)) == t.torus_distance(a, b)

    def test_links_single_dimension_per_hop(self):
        t = Torus((4, 4))
        for link in t.route(0, 15):
            assert link.cls == LinkClass.TORUS

    def test_fig16_distance_example(self):
        # Fig. 16: ranks 0 and 15 on a 4x4 torus are 2 hops apart even though
        # their modulo distance is 1.
        t = Torus((4, 4))
        assert t.torus_distance(0, 15) == 2


class TestMultiRankNodes:
    def test_same_node_intra(self):
        topo = MultiRankNodes(Dragonfly(2, 4), ppn=4)
        route = topo.route(0, 3)
        assert [l.cls for l in route] == [LinkClass.INTRA]

    def test_cross_node_uses_inner(self):
        topo = MultiRankNodes(Dragonfly(2, 4), ppn=4)
        route = topo.route(0, 4)  # ranks on nodes 0 and 1, same group
        assert all(l.cls != LinkClass.INTRA for l in route)

    def test_group_of_rank(self):
        topo = MultiRankNodes(Dragonfly(2, 4), ppn=2)
        assert topo.group_of(0) == 0
        assert topo.group_of(9) == 1


class TestMappings:
    def test_block_mapping(self):
        m = block_mapping(8, ppn=2)
        assert m.nodes == (0, 0, 1, 1, 2, 2, 3, 3)

    def test_allocation_mapping(self):
        m = allocation_mapping([5, 9, 2], ppn=1)
        assert m.nodes == (5, 9, 2)

    def test_hostname_sorted(self):
        m = hostname_sorted([5, 9, 2], ppn=2)
        assert m.nodes == (2, 2, 5, 5, 9, 9)

    def test_ranks_per_group(self):
        df = Dragonfly(2, 4)
        m = block_mapping(8)
        assert m.ranks_per_group(df) == {0: 4, 1: 4}


class TestAllocationSampler:
    def test_sample_properties(self):
        shape = SystemShape("t", 8, 16)
        sampler = AllocationSampler(shape, seed=0, busy_fraction=0.5)
        for size in (4, 16, 64, 100):
            alloc = sampler.sample(size)
            assert alloc.num_nodes == size
            assert len(set(alloc.nodes)) == size           # distinct nodes
            assert list(alloc.nodes) == sorted(alloc.nodes)  # hostname order
            assert all(0 <= n < shape.total_nodes for n in alloc.nodes)

    def test_large_jobs_span_more_groups(self):
        shape = SystemShape("t", 16, 32)
        sampler = AllocationSampler(shape, seed=1, busy_fraction=0.5)
        small = [sampler.sample(8).groups_spanned() for _ in range(20)]
        large = [sampler.sample(256).groups_spanned() for _ in range(20)]
        assert sum(large) / len(large) > sum(small) / len(small)

    def test_oversized_job_rejected(self):
        shape = SystemShape("t", 2, 4)
        with pytest.raises(ValueError):
            AllocationSampler(shape).sample(9)

    def test_deterministic_given_seed(self):
        shape = SystemShape("t", 8, 16)
        a = AllocationSampler(shape, seed=5).sample(32)
        b = AllocationSampler(shape, seed=5).sample(32)
        assert a.nodes == b.nodes
