"""Tests for ring, Bruck, alltoall, composed, and hierarchical collectives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.alltoall import (
    alltoall_bine,
    alltoall_bruck,
    alltoall_pairwise,
)
from repro.collectives.bruck_allgather import allgather_bruck, allgather_sparbit
from repro.collectives.composed import (
    bcast_scatter_allgather_bine,
    bcast_scatter_allgather_binomial,
    hierarchical_allreduce_bine,
    reduce_rsag_bine,
    reduce_rsag_rabenseifner,
    remap_schedule,
)
from repro.collectives.ring import (
    linear_gather,
    linear_scatter,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)
from repro.collectives.verify import run_and_check


class TestRing:
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 16, 17])
    def test_allreduce_any_p(self, p):
        run_and_check(ring_allreduce(p, 3 * p + 1))

    @pytest.mark.parametrize("p", [2, 4, 7, 16])
    def test_rs_ag(self, p):
        run_and_check(ring_reduce_scatter(p, 2 * p + 1))
        run_and_check(ring_allgather(p, 2 * p + 1))

    def test_step_count_linear(self):
        assert ring_allgather(10, 20).num_steps == 9
        assert ring_allreduce(10, 20).num_steps == 18

    def test_marked_segmented(self):
        assert ring_allreduce(4, 8).meta["segmented"] is True

    def test_p1_rejected(self):
        with pytest.raises(ValueError):
            ring_allgather(1, 4)


class TestLinear:
    @pytest.mark.parametrize("p", [2, 5, 9])
    @pytest.mark.parametrize("root", [0, 1])
    def test_gather_scatter(self, p, root):
        run_and_check(linear_gather(p, 3 * p, root % p))
        run_and_check(linear_scatter(p, 3 * p, root % p))

    def test_single_step(self):
        assert linear_gather(9, 18).num_steps == 1


class TestBruckAllgather:
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 12, 16, 31])
    def test_correct_any_p(self, p):
        run_and_check(allgather_bruck(p, 2 * p))

    @pytest.mark.parametrize("p", [2, 5, 8, 13])
    def test_sparbit_correct(self, p):
        run_and_check(allgather_sparbit(p, 2 * p))

    def test_log_rounds(self):
        assert allgather_bruck(16, 32).num_steps == 4
        assert allgather_bruck(17, 34).num_steps == 5

    def test_bruck_segments_at_most_two(self):
        sched = allgather_bruck(16, 32)
        assert max(t.num_segments for _, t in sched.all_transfers()) <= 2

    def test_sparbit_per_block(self):
        sched = allgather_sparbit(16, 32)
        assert max(t.num_segments for _, t in sched.all_transfers()) > 2


class TestAlltoall:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_bine(self, p):
        run_and_check(alltoall_bine(p, 2 * p))

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 12, 16])
    def test_bruck(self, p):
        run_and_check(alltoall_bruck(p, 2 * p))

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 16])
    def test_pairwise(self, p):
        run_and_check(alltoall_pairwise(p, 2 * p))

    def test_bine_sends_half_per_step(self):
        """Sec. 4.4: at each step each rank ships n/2 bytes."""
        p, n = 16, 32
        sched = alltoall_bine(p, n)
        for step in sched.steps:
            if not step.transfers:
                continue
            per_rank = {}
            for t in step.transfers:
                per_rank[t.src] = per_rank.get(t.src, 0) + t.nelems
            assert all(v == n // 2 for v in per_rank.values())

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            alltoall_bine(8, 17)

    def test_step_counts(self):
        assert sum(1 for s in alltoall_pairwise(8, 16).steps if s.transfers) == 7
        assert sum(1 for s in alltoall_bine(8, 16).steps if s.transfers) == 3

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_property_random_payloads(self, seed):
        run_and_check(alltoall_bine(8, 24), seed=seed)


class TestComposed:
    @pytest.mark.parametrize("p", [4, 8, 16, 32])
    @pytest.mark.parametrize("root", [0, 5])
    def test_bcast_large(self, p, root):
        run_and_check(bcast_scatter_allgather_binomial(p, 4 * p, root % p))
        run_and_check(bcast_scatter_allgather_bine(p, 4 * p, root % p))

    @pytest.mark.parametrize("p", [4, 8, 16, 32])
    @pytest.mark.parametrize("root", [0, 5])
    def test_reduce_large(self, p, root):
        run_and_check(reduce_rsag_rabenseifner(p, 4 * p, root % p))
        run_and_check(reduce_rsag_bine(p, 4 * p, root % p))

    def test_bine_bcast_no_local_copies(self):
        """Sec. 4.5: Bine large bcast never reorders data locally."""
        sched = bcast_scatter_allgather_bine(16, 64)
        for step in sched.steps:
            assert not step.pre and not step.post

    def test_bine_reduce_contiguous_at_root0(self):
        """Sec. 4.5: contiguous transmission throughout for root 0."""
        sched = reduce_rsag_bine(16, 64, root=0)
        assert all(t.num_segments == 1 for _, t in sched.all_transfers())


class TestHierarchical:
    @pytest.mark.parametrize("nodes,gpus", [(2, 2), (4, 4), (8, 2), (2, 8)])
    def test_correct(self, nodes, gpus):
        run_and_check(hierarchical_allreduce_bine(nodes, gpus, 2 * nodes * gpus))

    def test_meta(self):
        sched = hierarchical_allreduce_bine(4, 4, 32)
        assert sched.meta["hierarchical"] is True
        assert sched.p == 16

    def test_intra_phases_stay_on_node(self):
        sched = hierarchical_allreduce_bine(4, 4, 32)
        first, last = sched.steps[0], sched.steps[-1]
        for step in (first, last):
            for t in step.transfers:
                assert t.src // 4 == t.dst // 4  # same node


class TestRemap:
    def test_remap_shifts(self):
        sched = ring_allreduce(4, 8)
        out = remap_schedule(sched, [10, 11, 12, 13], 100)
        _, t = next(iter(out.all_transfers()))
        assert t.src >= 10 and t.dst >= 10
        assert all(lo >= 100 for lo, _ in t.src_segments)
