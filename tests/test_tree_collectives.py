"""End-to-end correctness of tree collectives across all tree families."""

import pytest

from repro.collectives.tree_collectives import (
    bcast_from_tree,
    gather_from_tree,
    reduce_from_tree,
    scatter_from_tree,
)
from repro.collectives.verify import run_and_check
from repro.core.bine_tree import (
    bine_tree_distance_doubling,
    bine_tree_distance_halving,
)
from repro.core.binomial_tree import (
    binomial_tree_distance_doubling,
    binomial_tree_distance_halving,
)

TREES = {
    "bine-dh": bine_tree_distance_halving,
    "bine-dd": bine_tree_distance_doubling,
    "binomial-dd": binomial_tree_distance_doubling,
    "binomial-dh": binomial_tree_distance_halving,
}
GATHER_TREES = {k: TREES[k] for k in ("bine-dh", "binomial-dh")}


@pytest.mark.parametrize("kind", sorted(TREES))
@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
@pytest.mark.parametrize("root", [0, 1])
class TestBcastReduce:
    def test_bcast(self, kind, p, root):
        run_and_check(bcast_from_tree(TREES[kind](p, root % p), 23))

    def test_reduce(self, kind, p, root):
        run_and_check(reduce_from_tree(TREES[kind](p, root % p), 23))


@pytest.mark.parametrize("kind", sorted(GATHER_TREES))
@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
@pytest.mark.parametrize("root", [0, 3])
class TestGatherScatter:
    def test_gather(self, kind, p, root):
        run_and_check(gather_from_tree(GATHER_TREES[kind](p, root % p), 37))

    def test_scatter(self, kind, p, root):
        run_and_check(scatter_from_tree(GATHER_TREES[kind](p, root % p), 37))


class TestOps:
    @pytest.mark.parametrize("op", ["sum", "max", "min", "prod", "bxor"])
    def test_reduce_ops(self, op):
        tree = bine_tree_distance_halving(8)
        sched = reduce_from_tree(tree, 16, op)
        run_and_check(sched)


class TestShapes:
    def test_bcast_step_count_logarithmic(self):
        sched = bcast_from_tree(bine_tree_distance_halving(64), 10)
        assert sched.num_steps == 6

    def test_gather_total_volume(self):
        # Gather moves each block once per tree level it ascends; the root
        # receives exactly n elements' worth of distinct blocks overall.
        p, n = 16, 32
        sched = gather_from_tree(bine_tree_distance_halving(p), n)
        # every rank except the root sends exactly once
        sends = {t.src for _, t in sched.all_transfers()}
        assert len(sends) == p - 1

    def test_gather_segments_at_most_two(self):
        # circular subtree ranges linearise to ≤ 2 wire segments (Sec. 4.3.1)
        for p in (8, 16, 32, 64):
            sched = gather_from_tree(bine_tree_distance_halving(p), 4 * p)
            assert max(t.num_segments for _, t in sched.all_transfers()) <= 2

    def test_binomial_dd_gather_rejected(self):
        # distance-doubling binomial subtrees are not contiguous ranges; the
        # library refuses rather than silently building a wrong gather
        with pytest.raises(ValueError):
            gather_from_tree(binomial_tree_distance_doubling(8), 16)

    def test_bcast_traffic_ordering_fig1(self):
        """Fig. 1 on the 8-node fat tree: dd = 6n, dh = 3n, bine ≤ dh."""
        from repro.model.traffic import global_traffic_elems
        from repro.topology.fattree import FatTree

        ft = FatTree(4, 2, 2.0)
        groups = [ft.group_of(i) for i in range(8)]
        n = 16
        dd = global_traffic_elems(
            bcast_from_tree(binomial_tree_distance_doubling(8), n), groups)
        dh = global_traffic_elems(
            bcast_from_tree(binomial_tree_distance_halving(8), n), groups)
        bine = global_traffic_elems(
            bcast_from_tree(bine_tree_distance_halving(8), n), groups)
        assert dd == 6 * n and dh == 3 * n and bine <= dh
