"""Degraded-fabric fault injection: spec parsing, determinism, rerouting.

The fault layer's contract: a FaultSpec degrades a topology
deterministically from its seed, reroutes around failed global links (or
names the partitioned pair), and leaves records bit-identical across
profile engines, serial/parallel execution, and cold/warm disk caches.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import ProfileCache, SweepRecord, sweep_system
from repro.cli.manifest import ManifestError, manifest_from_dict, manifest_to_dict
from repro.faults import NIC_DERATE, DegradedTopology, FaultSpec
from repro.runtime.errors import FaultSpecError, TopologyPartitionedError
from repro.systems import fugaku, lumi, marenostrum5
from repro.topology.base import LinkClass
from repro.topology.dragonfly import Dragonfly


class TestFaultSpec:
    def test_parse_label_round_trip(self):
        spec = FaultSpec.parse("links=2,global=0.5,seed=13")
        assert spec.failed_links == 2
        assert spec.derate == (("global", 0.5),)
        assert spec.seed == 13
        assert spec.label == "links2-globalx0.5-seed13"
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("text", ["", "none"])
    def test_parse_pristine(self, text):
        spec = FaultSpec.parse(text)
        assert spec.is_null
        assert spec.label == "none"

    @pytest.mark.parametrize(
        "text,match",
        [
            ("bogus=1", "unknown key"),
            ("links=x", "takes an integer"),
            ("global=zero", "takes a"),
            ("links", "key=value"),
            ("links=-1", "must be >= 0"),
            ("global=1.5", r"\(0, 1\]"),
            ("global=0", r"\(0, 1\]"),
        ],
    )
    def test_parse_errors(self, text, match):
        with pytest.raises(FaultSpecError, match=match):
            FaultSpec.parse(text)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultSpecError, match="unknown key"):
            FaultSpec.from_dict({"failed_link": 1})

    def test_label_covers_all_knobs(self):
        spec = FaultSpec(seed=3, failed_links=1, failed_nodes=2, nic_outages=1)
        assert spec.label == "links1-nodes2-nics1-seed3"


class TestDegradedTopology:
    def test_same_seed_same_victims(self):
        spec = FaultSpec(seed=13, failed_links=3, failed_nodes=2, nic_outages=1)
        a = DegradedTopology(Dragonfly(8, 8), spec)
        b = DegradedTopology(Dragonfly(8, 8), spec)
        assert a.failed_links == b.failed_links
        assert a.failed_nodes == b.failed_nodes
        assert a.nic_outages == b.nic_outages
        assert len(a.failed_links) == 3

    def test_different_seed_different_victims(self):
        base = Dragonfly(8, 8)
        sets = {
            DegradedTopology(base, FaultSpec(seed=s, failed_links=3)).failed_links
            for s in range(8)
        }
        assert len(sets) > 1

    def test_detour_avoids_failed_links(self):
        spec = FaultSpec(seed=13, failed_links=2)
        topo = DegradedTopology(Dragonfly(8, 8), spec)
        inner = topo.inner
        for src in range(0, topo.num_nodes, 7):
            for dst in range(1, topo.num_nodes, 11):
                if src == dst:
                    continue
                route = topo.route(src, dst)
                assert not any(l.key in topo.failed_links for l in route)
                # detours add hops, never drop endpoints' groups
                if any(
                    l.key in topo.failed_links for l in inner.route(src, dst)
                ):
                    assert len(route) > len(inner.route(src, dst))

    def test_class_derate_scales_widths(self):
        spec = FaultSpec(derate={"global": 0.5})
        topo = DegradedTopology(Dragonfly(8, 8), spec)
        route = topo.route(0, topo.num_nodes - 1)
        base = topo.inner.route(0, topo.num_nodes - 1)
        for degraded, pristine in zip(route, base):
            expect = pristine.width * (
                0.5 if pristine.cls == LinkClass.GLOBAL else 1.0
            )
            assert degraded.width == expect
        assert any(l.cls == LinkClass.GLOBAL for l in route)

    def test_nic_outage_derates_adjacent_links(self):
        spec = FaultSpec(seed=1, nic_outages=1)
        topo = DegradedTopology(Dragonfly(8, 8), spec)
        (victim,) = topo.nic_outages
        peer = (victim + 1) % topo.num_nodes
        route = topo.route(victim, peer)
        pristine = topo.inner.route(victim, peer)
        assert route[0].width == pristine[0].width * NIC_DERATE

    def test_failed_node_partitions(self):
        spec = FaultSpec(seed=5, failed_nodes=1)
        topo = DegradedTopology(Dragonfly(8, 8), spec)
        (down,) = topo.failed_nodes
        alive = next(v for v in range(topo.num_nodes) if v != down)
        with pytest.raises(TopologyPartitionedError) as exc:
            topo.route(down, alive)
        assert str(down) in str(exc.value)

    def test_partition_names_pair(self):
        # MareNostrum 5 fat tree: fail every up/down uplink between two
        # subtrees' worth of routes by derating... instead: exhaust detours
        # on a 2-group dragonfly (single inter-group bundle, no detour
        # group exists)
        topo = DegradedTopology(
            Dragonfly(2, 4), FaultSpec(seed=0, failed_links=1)
        )
        src, dst = 0, topo.num_nodes - 1
        assert topo.group_of(src) != topo.group_of(dst)
        with pytest.raises(TopologyPartitionedError, match="no surviving route"):
            topo.route(src, dst)

    def test_torus_has_no_global_links(self):
        with pytest.raises(FaultSpecError, match="global links"):
            DegradedTopology(
                fugaku().build_topology(), FaultSpec(failed_links=1)
            )

    def test_torus_class_derate_still_works(self):
        topo = DegradedTopology(
            fugaku().build_topology(), FaultSpec(derate={"torus": 0.5})
        )
        route = topo.route(0, 1)
        assert all(l.width == 0.5 * b.width
                   for l, b in zip(route, topo.inner.route(0, 1)))

    def test_double_wrap_rejected(self):
        topo = DegradedTopology(Dragonfly(4, 4), FaultSpec(seed=1))
        with pytest.raises(FaultSpecError, match="already-degraded"):
            DegradedTopology(topo, FaultSpec(seed=2))

    def test_fattree_links_fail(self):
        topo = DegradedTopology(
            marenostrum5().build_topology(), FaultSpec(seed=3, failed_links=2)
        )
        assert len(topo.failed_links) == 2
        for key in topo.failed_links:
            assert key[0] in ("up", "down")


SWEEP_KWARGS = dict(
    collectives=("allgather", "bcast"),
    node_counts=(16, 64),
    vector_bytes=(1024, 65536),
)
SPEC = FaultSpec(seed=13, failed_links=2, derate={"global": 0.5})


class TestFaultedSweeps:
    def test_records_carry_label(self):
        records = sweep_system(lumi(), faults=SPEC, **SWEEP_KWARGS)
        assert records
        assert {r.faults for r in records} == {SPEC.label}
        # key is (..., faults, timeline); the static label slots before
        # the (empty) timeline label
        assert all(r.key[-2:] == (SPEC.label, "none") for r in records)

    def test_faulted_differs_from_pristine(self):
        pristine = sweep_system(lumi(), **SWEEP_KWARGS)
        faulted = sweep_system(lumi(), faults=SPEC, **SWEEP_KWARGS)
        assert len(pristine) == len(faulted)
        assert any(
            a.time != b.time or a.global_bytes != b.global_bytes
            for a, b in zip(pristine, faulted)
        )

    @pytest.mark.parametrize("ppn", [1, 2])
    def test_engines_bit_identical_under_faults(self, ppn):
        # detour rerouting must agree between engines at every ranks-per-
        # node factor, and the records must carry the ppn they swept
        compiled = sweep_system(
            lumi(), faults=SPEC, profile_engine="compiled", ppn=ppn,
            **SWEEP_KWARGS
        )
        python = sweep_system(
            lumi(), faults=SPEC, profile_engine="python", ppn=ppn,
            **SWEEP_KWARGS
        )
        assert compiled == python
        assert {r.ppn for r in compiled} == {ppn}

    def test_parallel_identical_to_serial_under_faults(self):
        serial = sweep_system(lumi(), faults=SPEC, **SWEEP_KWARGS)
        parallel = sweep_system(lumi(), faults=SPEC, workers=2, **SWEEP_KWARGS)
        assert serial == parallel

    def test_warm_disk_identical_to_cold_under_faults(self, tmp_path):
        cold = sweep_system(
            lumi(), faults=SPEC, disk_dir=tmp_path / "c", **SWEEP_KWARGS
        )
        warm = sweep_system(
            lumi(), faults=SPEC, disk_dir=tmp_path / "c", **SWEEP_KWARGS
        )
        assert cold == warm

    def test_scenarios_get_separate_cache_namespaces(self, tmp_path):
        sweep_system(lumi(), faults=SPEC, disk_dir=tmp_path / "c",
                     collectives=("bcast",), node_counts=(16,),
                     vector_bytes=(1024,))
        sweep_system(lumi(), disk_dir=tmp_path / "c",
                     collectives=("bcast",), node_counts=(16,),
                     vector_bytes=(1024,))
        dirs = {d.name for d in (tmp_path / "c").iterdir()}
        assert any(SPEC.label in d for d in dirs)
        assert any("faults.none" in d for d in dirs)

    def test_cache_conflicting_faults_rejected(self):
        topo = DegradedTopology(lumi().build_topology(), SPEC)
        import dataclasses

        preset = dataclasses.replace(lumi(), topology=lambda: topo)
        # the preset factory's degradation governs; a different explicit
        # spec is a contradiction
        with pytest.raises(ValueError, match="already degraded"):
            ProfileCache(preset, faults=FaultSpec(seed=99, failed_links=1))
        assert ProfileCache(preset).faults == SPEC


class TestSelectionUnderFaults:
    def test_faults_label_keys_distinct_tables(self):
        from repro.runtime.errors import TuneQueryError
        from repro.tune import build_decision_table, select_algorithm

        kwargs = dict(collectives=("bcast",), node_counts=(16,),
                      vector_bytes=(1024,))
        records = (
            sweep_system(lumi(), **kwargs)
            + sweep_system(lumi(), faults=SPEC, **kwargs)
        )
        table = build_decision_table(records, name="t", source="test")
        assert {sub.faults for sub in table.tables} == {"none", SPEC.label}
        pristine = select_algorithm(table, "bcast", "lumi", 16, 1, 1024)
        degraded = select_algorithm(
            table, "bcast", "lumi", 16, 1, 1024, faults=SPEC.label
        )
        # both sub-tables answer; each from its own scenario's records
        best = {}
        for scenario in ("none", SPEC.label):
            own = [r for r in records if r.faults == scenario]
            best[scenario] = min(
                own, key=lambda r: (r.time, r.algorithm)
            ).algorithm
        assert pristine == best["none"]
        assert degraded == best[SPEC.label]
        with pytest.raises(TuneQueryError, match="no sub-table"):
            select_algorithm(
                table, "bcast", "lumi", 16, 1, 1024, faults="links9-seed9"
            )


class TestRecordCompat:
    def test_from_dict_defaults_faults(self):
        d = {
            "system": "lumi", "collective": "bcast", "algorithm": "bine",
            "family": "bine", "p": 16, "n_bytes": 32, "time": 1e-6,
            "global_bytes": 64.0,
        }
        assert SweepRecord.from_dict(d).faults == "none"

    def test_old_baseline_rows_load(self):
        from repro.report.diff import record_set_from_json

        rows = [{
            "system": "lumi", "collective": "bcast", "algorithm": "bine",
            "family": "bine", "p": 16, "n_bytes": 32, "time": 1e-6,
            "global_bytes": 64.0,
        }]
        rs = record_set_from_json(rows, "old")
        assert rs.kind == "sweep"
        (rec,) = rs.to_records()
        assert rec.faults == "none"


MANIFEST = {
    "campaign": {"name": "t", "system": "lumi"},
    "grid": [{"collectives": ["bcast"], "node_counts": [16],
              "vector_bytes": [1024]}],
}


class TestManifestFaults:
    def test_faults_parsed_and_round_tripped(self):
        data = dict(MANIFEST)
        data["faults"] = [{}, {"failed_links": 2, "seed": 13,
                               "derate": {"global": 0.5}}]
        m = manifest_from_dict(data)
        assert [s.label for s in m.faults] == \
            ["none", "links2-globalx0.5-seed13"]
        again = manifest_from_dict(manifest_to_dict(m))
        assert again.faults == m.faults

    def test_bad_fault_table_is_manifest_error(self):
        data = dict(MANIFEST)
        data["faults"] = [{"failed_links": "two"}]
        with pytest.raises(ManifestError, match=r"\[\[faults\]\] #0"):
            manifest_from_dict(data)

    def test_duplicate_labels_rejected(self):
        data = dict(MANIFEST)
        data["faults"] = [{"failed_links": 1}, {"failed_links": 1}]
        with pytest.raises(ManifestError, match="duplicate"):
            manifest_from_dict(data)

    def test_faults_with_torus_grid_rejected(self):
        data = {
            "campaign": {"name": "t", "system": "fugaku"},
            "grid": [{"collectives": ["bcast"], "torus_dims": [2, 2],
                      "vector_bytes": [1024]}],
            "faults": [{"failed_links": 1}],
        }
        with pytest.raises(ManifestError, match="torus"):
            manifest_from_dict(data)

    def test_campaign_runs_scenarios(self):
        from repro.cli.campaign import run_campaign

        data = dict(MANIFEST)
        data["faults"] = [{}, {"failed_links": 2, "seed": 13}]
        result = run_campaign(manifest_from_dict(data))
        labels = {r.faults for r in result.records}
        assert labels == {"none", "links2-seed13"}

    def test_cli_faults_override_manifest(self):
        from repro.cli.campaign import run_campaign

        data = dict(MANIFEST)
        data["faults"] = [{"failed_links": 1}]
        result = run_campaign(
            manifest_from_dict(data),
            faults=(FaultSpec(seed=13, failed_links=3),),
        )
        assert {r.faults for r in result.records} == {"links3-seed13"}

    def test_explicit_cache_incompatible_with_scenarios(self):
        from repro.cli.campaign import run_campaign

        data = dict(MANIFEST)
        data["faults"] = [{"failed_links": 1}]
        cache = ProfileCache(lumi())
        with pytest.raises(ValueError, match="explicit cache"):
            run_campaign(manifest_from_dict(data), cache=cache)
