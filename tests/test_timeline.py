"""Fault timelines and the discrete-event fabric engine (DES).

* Grammar properties (seeded, ``tests/strategies.py``): canonical labels
  round-trip (``FaultTimeline.parse(tl.label) == tl``), event order never
  matters, duplicate event times are rejected, invalid events fail loudly.
* Calibration contract: with an empty timeline the DES engine's sweep
  records are **exactly** equal — bit for bit — to the compiled analytic
  engine's, on both the calm fast path and the forced event-loop path.
* Determinism: timeline runs reproduce across processes-worth of reruns,
  and parallel sharding is byte-identical to serial.
* Partition semantics: a timeline that cuts off in-flight flows yields
  structured ``stalled=True`` records and CLI exit code 8 — never a hang
  or a traceback.
* Satellites: a derate that underflows link width to zero is rejected as
  a :class:`FaultSpecError` (not a silent ``inf``), and disk-cache
  corruption recovery warns once per corrupt file per process.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest
from strategies import rng_for, timeline

from repro.analysis.sweep import (
    _CACHE_MAGIC,
    ProfileCache,
    clear_memo_caches,
    sweep_system,
)
from repro.cli.formatters import records_json
from repro.cli.main import main
from repro.cli.manifest import ManifestError, manifest_from_dict, manifest_to_dict
from repro.collectives.registry import spec_for
from repro.des import simulate_profile
from repro.faults import FaultSpec, FaultTimeline, TimelineEvent
from repro.model.compiled import transfer_table_for
from repro.runtime.errors import DESEngineError, FaultSpecError
from repro.systems import lumi


class TestTimelineGrammar:
    def test_label_round_trip(self):
        for seed in range(60):
            tl = timeline(rng_for(seed))
            assert FaultTimeline.parse(tl.label) == tl
            assert FaultTimeline.parse(tl.label).label == tl.label

    def test_order_invariance(self):
        for seed in range(30):
            rng = rng_for(1000 + seed)
            tl = timeline(rng, max_events=5)
            events = list(tl.events)
            rng.shuffle(events)
            assert FaultTimeline(tuple(events)) == tl
            assert FaultTimeline(tuple(events)).label == tl.label

    def test_empty_timeline(self):
        assert FaultTimeline().label == "none"
        assert FaultTimeline.parse("none").is_null
        assert FaultTimeline.parse("").is_null

    def test_duplicate_at_rejected(self):
        with pytest.raises(FaultSpecError, match="duplicate"):
            FaultTimeline((TimelineEvent(at=0.01, links=1),
                           TimelineEvent(at=0.01, heal="links")))
        with pytest.raises(FaultSpecError, match="duplicate"):
            FaultTimeline.parse("at=0.01:links=1;at=0.01:heal=links")

    def test_invalid_events_rejected(self):
        cases = {
            "at=-1:links=1": "finite and >= 0",
            "at=0.01:heal=links,links=1": "heal events carry no",
            "at=0.01:": "does nothing",
            "at=0.01:heal=bogus": "unknown",
            "at=0.01:background=1.5": r"in \[0, 1\)",
            "at=0.01:local=0": r"in \(0, 1\]",
            "bogus": "expected 'at=",
            "at=0.01:wat=1": "unknown field",
        }
        for text, match in cases.items():
            with pytest.raises(FaultSpecError, match=match):
                FaultTimeline.parse(text)

    def test_fault_spec_composition(self):
        static = FaultSpec.parse("links=2,seed=13")
        tl = FaultTimeline.parse("at=0.001:links=1,seed=7;at=0.01:heal=links")
        timed = dataclasses.replace(static, timeline=tl)
        # the static label keys caches/records; the timeline has its own
        assert timed.label == static.label
        assert timed.timeline_label == tl.label
        assert not timed.is_null and timed.has_static
        assert FaultSpec.from_dict(timed.to_dict()) == timed
        only = FaultSpec(timeline=tl)
        assert only.label == "none"
        assert not only.is_null and not only.has_static
        assert FaultSpec.from_dict(only.to_dict()) == only


#: the three-collective LUMI calibration grid asserted by the contract
CALIBRATION_GRID = dict(
    collectives=("allgather", "allreduce", "bcast"),
    node_counts=(16, 64),
    vector_bytes=(1024, 16777216),
)


class TestCalibration:
    def test_des_records_exactly_equal_compiled(self):
        compiled = sweep_system(lumi(), profile_engine="compiled",
                                **CALIBRATION_GRID)
        des = sweep_system(lumi(), profile_engine="des", **CALIBRATION_GRID)
        assert compiled  # a vacuous grid would prove nothing
        assert des == compiled

    def test_event_loop_exactly_equals_fast_path(self):
        preset = lumi()
        cache = ProfileCache(preset, profile_engine="des")
        spec = spec_for("bcast", "bine")
        profile = cache.get(spec, 16)
        table = transfer_table_for(spec, 16)
        mapping = cache.mapping_for(16, 1)
        for nb in (1024, 65536, 16777216):
            n_elems = nb / preset.params.itemsize
            args = (table, profile, cache.topo, mapping, preset.params,
                    FaultTimeline(), n_elems)
            fast = simulate_profile(*args)
            slow = simulate_profile(*args, force_event_loop=True)
            assert not fast.stalled and not slow.stalled
            assert slow.time == fast.time


#: background traffic claims half of *every* link for a window — perturbs
#: any in-flight flow on the grid, never stalls
PERTURB_TIMELINE = "at=0.0005:background=0.5;at=0.01:heal=background"


class TestTimelineDeterminism:
    def _sweep(self, tl: str | None, workers: int | None = None):
        # the 16 MiB size keeps flows in flight past the first event time,
        # so the timeline demonstrably perturbs part of the grid
        return sweep_system(
            lumi(), ("allgather", "bcast"), node_counts=(16, 64),
            vector_bytes=(1024, 16777216), profile_engine="des",
            faults=FaultSpec(timeline=tl) if tl else None, workers=workers,
        )

    def test_reruns_and_parallel_shards_byte_identical(self):
        serial = self._sweep(PERTURB_TIMELINE)
        clear_memo_caches()
        assert self._sweep(PERTURB_TIMELINE) == serial
        clear_memo_caches()
        parallel = self._sweep(PERTURB_TIMELINE, workers=2)
        assert parallel == serial
        assert records_json(parallel) == records_json(serial)

    def test_timeline_perturbs_and_labels_records(self):
        calm = self._sweep(None)
        perturbed = self._sweep(PERTURB_TIMELINE)
        label = FaultTimeline.parse(PERTURB_TIMELINE).label
        assert all(r.timeline == label for r in perturbed)
        assert all(not r.stalled for r in perturbed)
        assert all(r.faults == "none" for r in perturbed)  # static label
        # the contention window actually slows something down somewhere on
        # the grid — a timeline that never perturbs would be a silent no-op
        assert any(a.time > b.time for a, b in zip(perturbed, calm))

    def test_link_failure_genuinely_reroutes(self):
        # the p=64 scheduler mapping spans exactly two groups and routes
        # every inter-group byte over one global bundle; seed 54 samples
        # that bundle as a victim, so the flows must detour (through a
        # third group's representative) instead of merely re-timing
        grid = dict(collectives=("allgather",), algorithms=("bine-send",),
                    node_counts=(64,), vector_bytes=(16777216,))
        calm = sweep_system(lumi(), profile_engine="des", **grid)
        hit = sweep_system(
            lumi(), profile_engine="des",
            faults=FaultSpec(timeline="at=1e-05:links=2,seed=54"), **grid)
        (calm_rec,), (hit_rec,) = calm, hit
        assert not hit_rec.stalled
        assert hit_rec.time > 1.5 * calm_rec.time  # measured ~1.8x


#: LUMI has 2976 nodes; killing 2970 must hit any 16-node mapping
STALL_TIMELINE = "at=1e-09:nodes=2970,seed=1"


class TestPartitionStall:
    def test_cli_emits_stalled_records_and_exits_8(self, tmp_path, capsys):
        out = tmp_path / "records.json"
        with pytest.warns(RuntimeWarning, match="stalled under timeline"):
            code = main(["sweep", "--system", "lumi", "--collective", "bcast",
                         "--nodes", "16", "--sizes", "1024",
                         "--profile-engine", "des",
                         "--timeline", STALL_TIMELINE,
                         "--format", "json", "--output", str(out)])
        assert code == 8
        assert "stalled" in capsys.readouterr().err
        rows = json.loads(out.read_text())  # records still fully emitted
        assert rows and all(row["stalled"] for row in rows)
        expected = FaultTimeline.parse(STALL_TIMELINE).label
        assert all(row["timeline"] == expected for row in rows)

    def test_timeline_without_des_engine_exits_8(self, capsys):
        code = main(["sweep", "--system", "lumi", "--collective", "bcast",
                     "--nodes", "16", "--sizes", "1024",
                     "--timeline", "at=0.001:links=1"])
        assert code == 8
        assert "DESEngineError" in capsys.readouterr().err

    def test_analytic_cells_reject_timelines(self):
        # alltoall is always analytic: no lowered transfer program to replay
        with pytest.raises(DESEngineError, match="analytic"):
            sweep_system(lumi(), ("alltoall",), node_counts=(16,),
                         vector_bytes=(1024,), profile_engine="des",
                         faults=FaultSpec(timeline="at=0.001:links=1"))

    def test_bad_timeline_exits_3(self, capsys):
        code = main(["sweep", "--system", "lumi", "--collective", "bcast",
                     "--nodes", "16", "--sizes", "1024",
                     "--profile-engine", "des",
                     "--timeline", "at=0.01:wat=1"])
        assert code == 3
        assert "FaultSpecError" in capsys.readouterr().err


class TestManifestEngine:
    BASE = {
        "campaign": {"name": "t", "system": "lumi"},
        "grid": [{"collectives": ["bcast"], "node_counts": [16],
                  "vector_bytes": [1024]}],
    }

    def test_timeline_scenario_requires_des_engine(self):
        data = json.loads(json.dumps(self.BASE))
        data["faults"] = [{"timeline": "at=0.001:links=1"}]
        with pytest.raises(ManifestError, match='engine = "des"'):
            manifest_from_dict(data)
        data["campaign"]["engine"] = "des"
        m = manifest_from_dict(data)
        assert m.engine == "des"
        assert m.faults[0].timeline_label == "at=0.001:links=1"
        # engine and timeline survive the to_dict/from_dict round trip
        assert manifest_from_dict(manifest_to_dict(m)) == m

    def test_unknown_engine_rejected(self):
        data = json.loads(json.dumps(self.BASE))
        data["campaign"]["engine"] = "quantum"
        with pytest.raises(ManifestError, match="unknown engine"):
            manifest_from_dict(data)


class TestZeroWidthDerate:
    def test_underflowing_derate_rejected_not_inf(self):
        # 5e-324 (the smallest denormal) times the 0.5 NIC derate rounds
        # to exactly 0.0; a zero-width link used to turn every load it
        # carried into a silent divide-to-inf record
        from repro.faults import DegradedTopology, _group_members

        spec = FaultSpec.parse("nics=1,local=5e-324,seed=1")
        deg = DegradedTopology(lumi().build_topology(), spec)
        victim = sorted(deg.nic_outages)[0]
        peer = next(
            w for w in _group_members(deg.inner)[deg.group_of(victim)]
            if w != victim
        )
        with pytest.raises(FaultSpecError, match="underflow"):
            deg.route(victim, peer)


class TestCorruptionWarningDedupe:
    KWARGS = dict(collectives=("allgather",), node_counts=(16,),
                  vector_bytes=(1024,))

    def _corrupt(self, disk):
        entries = sorted(disk.rglob("*.pkl"))
        assert entries
        for f in entries:
            blob = f.read_bytes()
            f.write_bytes(blob[: max(len(_CACHE_MAGIC) + 8, len(blob) // 2)])
        return entries

    def test_one_warning_per_corrupt_file_per_process(self, tmp_path):
        disk = tmp_path / "cache"
        cold = sweep_system(lumi(), disk_dir=disk, **self.KWARGS)
        entries = self._corrupt(disk)
        with warnings.catch_warnings(record=True) as first:
            warnings.simplefilter("always")
            assert sweep_system(lumi(), disk_dir=disk, **self.KWARGS) == cold
        assert sum(
            "truncated" in str(w.message) for w in first
        ) == len(entries)
        # same files corrupted again: this process already warned for them
        self._corrupt(disk)
        with warnings.catch_warnings(record=True) as second:
            warnings.simplefilter("always")
            assert sweep_system(lumi(), disk_dir=disk, **self.KWARGS) == cold
        assert not [w for w in second if "truncated" in str(w.message)]
