"""Golden decision-table artifact: frozen bytes from the Table 3 campaign.

``tests/data/golden_tune_lumi.json`` is the decision table compiled from
a fixed slice of ``campaigns/table3_lumi.toml`` (bcast + allreduce,
p ∈ {16, 64}, three paper vector sizes).  The same contract as the
golden SVGs: a rebuild must be byte-identical — under serial execution,
``--workers 2`` sharding, and both profile engines — and every winner in
the table must equal the corresponding Fig. 9a heatmap cell.

Regenerate after an intentional model change with::

    PYTHONPATH=src python tests/test_tune_golden.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.summarize import best_algorithm_cells
from repro.cli.campaign import run_campaign
from repro.cli.commands import _restrict_manifest
from repro.cli.main import main
from repro.cli.manifest import load_manifest
from repro.tune import DecisionTable, build_decision_table

REPO_ROOT = Path(__file__).resolve().parents[1]
MANIFEST = REPO_ROOT / "campaigns" / "table3_lumi.toml"
DATA_DIR = Path(__file__).parent / "data"
GOLDEN = DATA_DIR / "golden_tune_lumi.json"

#: the frozen slice: two collectives, two node counts, three paper sizes
COLLECTIVES = ("bcast", "allreduce")
NODES = (16, 64)
SIZES = (2048, 131072, 1048576)


def build_golden_table(workers=None, profile_engine=None) -> DecisionTable:
    manifest = load_manifest(MANIFEST)
    manifest, error = _restrict_manifest(manifest, COLLECTIVES, NODES, SIZES)
    assert error is None
    result = run_campaign(
        manifest, workers=workers, profile_engine=profile_engine
    )
    return build_decision_table(
        result.records, name=manifest.name, source="campaigns/table3_lumi.toml"
    ), result.records


class TestGoldenTuneArtifact:
    @pytest.fixture(scope="class")
    def built(self):
        return build_golden_table()

    def test_golden_bytes(self, built):
        table, _ = built
        assert GOLDEN.exists(), (
            f"{GOLDEN} missing — regenerate with "
            "`PYTHONPATH=src python tests/test_tune_golden.py --regen`"
        )
        assert GOLDEN.read_text() == table.to_json(), (
            "golden_tune_lumi.json drifted from a fresh build; if the "
            "model change is intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_tune_golden.py --regen`"
        )

    def test_golden_loads_and_validates(self):
        table = DecisionTable.from_dict(
            json.loads(GOLDEN.read_text()), label=str(GOLDEN)
        )
        assert table.name == "table3-lumi"
        assert {t.collective for t in table.tables} == set(COLLECTIVES)
        for sub in table.tables:
            assert sub.p_grid == NODES
            assert sub.n_grid == SIZES
            assert sub.cells == len(NODES) * len(SIZES)

    @pytest.mark.parametrize("mode", [
        {"workers": 2},
        {"profile_engine": "python"},
        {"workers": 2, "profile_engine": "python"},
    ])
    def test_byte_identical_across_execution_modes(self, built, mode):
        table, _ = built
        again, _ = build_golden_table(**mode)
        assert again.to_json() == table.to_json(), (
            f"decision table bytes differ under {mode}"
        )

    def test_every_winner_matches_fig9a_heatmap_cell(self, built):
        # the acceptance gate: the artifact and the Fig. 9a heatmaps must
        # name the same winner in every cell, because both are computed by
        # best_algorithm_cells over the same records
        table, records = built
        for sub in table.tables:
            own = [
                r for r in records
                if (r.system, r.faults, r.collective, r.ppn) == sub.key
            ]
            heatmap = best_algorithm_cells(own, sub.collective)
            for i, p in enumerate(sub.p_grid):
                for j, nb in enumerate(sub.n_grid):
                    best, _ratio = heatmap[(p, nb)]
                    assert sub.winner[i][j] == best.algorithm, (
                        f"{sub.collective} p={p} n={nb}: table says "
                        f"{sub.winner[i][j]}, heatmap says {best.algorithm}"
                    )

    def test_cli_build_matches_library_build(self, built, tmp_path, capsys):
        table, _ = built
        out = tmp_path / "cli_table.json"
        code = main([
            "tune", str(MANIFEST),
            "--collective", "bcast", "--collective", "allreduce",
            "--nodes", "16,64", "--sizes", "2048,131072,1048576",
            "-o", str(out),
        ])
        capsys.readouterr()
        assert code == 0
        built_cli = json.loads(out.read_text())
        expect = json.loads(table.to_json())
        # "source" records the operand as typed (absolute here), and the
        # integrity digest covers it — everything else must be identical
        for volatile in ("source", "digest"):
            built_cli.pop(volatile)
            expect.pop(volatile)
        assert built_cli == expect


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        DATA_DIR.mkdir(exist_ok=True)
        table, _ = build_golden_table()
        GOLDEN.write_text(table.to_json())
        print(f"wrote {GOLDEN} ({table.cells} cells)")
    else:
        print(__doc__)
