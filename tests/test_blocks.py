"""Tests for block partitioning and circular ranges (paper Secs. 4.1-4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.blocks import CircularRange, Partition, wrap_range_from_set


class TestPartition:
    def test_even_split(self):
        part = Partition(12, 4)
        assert [part.size(i) for i in range(4)] == [3, 3, 3, 3]
        assert part.bounds(2) == (6, 9)

    def test_uneven_split_mpi_style(self):
        # First n mod p blocks get the extra element.
        part = Partition(10, 4)
        assert [part.size(i) for i in range(4)] == [3, 3, 2, 2]
        assert part.bounds(0) == (0, 3)
        assert part.bounds(2) == (6, 8)
        assert part.bounds(3) == (8, 10)

    def test_more_ranks_than_elements(self):
        part = Partition(3, 8)
        assert sum(part.size(i) for i in range(8)) == 3
        assert part.size(7) == 0
        lo, hi = part.bounds(7)
        assert lo == hi == 3

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=64))
    def test_blocks_tile_exactly(self, n, p):
        part = Partition(n, p)
        cursor = 0
        for b in range(p):
            lo, hi = part.bounds(b)
            assert lo == cursor
            assert hi - lo == part.size(b)
            cursor = hi
        assert cursor == n

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=64))
    def test_owner_of_consistent(self, n, p):
        part = Partition(n, p)
        for e in range(0, n, max(1, n // 17)):
            b = part.owner_of(e)
            lo, hi = part.bounds(b)
            assert lo <= e < hi

    def test_segments_coalesce(self):
        part = Partition(12, 4)
        assert part.segments([0, 1]) == [(0, 6)]
        assert part.segments([0, 2]) == [(0, 3), (6, 9)]
        assert part.segments([2, 0, 1]) == [(0, 9)]

    def test_total(self):
        part = Partition(10, 4)
        assert part.total([0, 3]) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            Partition(10, 0)
        with pytest.raises(ValueError):
            Partition(10, 4).bounds(4)
        with pytest.raises(ValueError):
            Partition(10, 4).owner_of(10)


class TestCircularRange:
    def test_wrap_indices(self):
        cr = CircularRange(6, 4, 8)
        assert cr.indices() == [6, 7, 0, 1]
        assert cr.wraps()
        assert cr.end == 1

    def test_no_wrap(self):
        cr = CircularRange(2, 3, 8)
        assert cr.indices() == [2, 3, 4]
        assert not cr.wraps()

    def test_contains(self):
        cr = CircularRange(6, 4, 8)
        for b in (6, 7, 0, 1):
            assert cr.contains(b)
        for b in (2, 5):
            assert not cr.contains(b)

    def test_merge_adjacent(self):
        a = CircularRange(6, 2, 8)  # {6,7}
        b = CircularRange(0, 2, 8)  # {0,1}
        merged = a.merge(b)
        assert merged.as_set() == {6, 7, 0, 1}
        # merge is symmetric
        assert b.merge(a).as_set() == merged.as_set()

    def test_merge_non_adjacent_raises(self):
        a = CircularRange(0, 2, 8)
        b = CircularRange(4, 2, 8)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_empty(self):
        a = CircularRange(3, 0, 8)
        b = CircularRange(5, 2, 8)
        assert a.merge(b) is b

    def test_segments_wrap_two_transmissions(self):
        # Sec. 4.3.1: a wrapped range linearises to exactly two segments.
        part = Partition(16, 8)
        cr = CircularRange(6, 4, 8)
        assert cr.segments(part) == [(0, 4), (12, 16)]

    def test_segments_no_wrap_single(self):
        part = Partition(16, 8)
        cr = CircularRange(2, 3, 8)
        assert cr.segments(part) == [(4, 10)]

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=32),
    )
    def test_roundtrip_from_set(self, p, start, length):
        start %= p
        length = min(length, p)
        cr = CircularRange(start, length, p)
        back = wrap_range_from_set(cr.as_set(), p)
        assert back.as_set() == cr.as_set()

    def test_from_set_rejects_gaps(self):
        with pytest.raises(ValueError):
            wrap_range_from_set({0, 2}, 8)

    def test_from_set_full_circle(self):
        assert wrap_range_from_set(set(range(8)), 8).length == 8
