"""Tests for Bine tree construction (paper Secs. 2.2-2.3, 3.2, Fig. 3/4/6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bine_tree import (
    bine_tree_distance_doubling,
    bine_tree_distance_halving,
    dd_partner,
    dd_recv_step,
    dh_partner,
    dh_recv_step,
    nu_inverse,
    nu_label,
    nu_labels,
)
from repro.core.blocks import wrap_range_from_set
from repro.core.distance import modulo_distance
from repro.core.negabinary import bit_reverse
from repro.core.tree import TreeError

POWERS = [2, 4, 8, 16, 32, 64, 128]


class TestDistanceHalvingTree:
    def test_fig4_recv_steps(self):
        # Fig. 4: 16-node tree; rank 8 (nb 1000, u=3) receives at step 1.
        assert dh_recv_step(8, 16) == 1

    def test_fig4_partners(self):
        # Fig. 4 box B: at step 2, rank 8 sends to rank 7.
        assert dh_partner(8, 2, 16) == 7
        # Root's first send in a 16-node tree: nb2rank(1111) = -5 mod 16 = 11.
        assert dh_partner(0, 0, 16) == 11

    def test_fig3_eight_node_root_children(self):
        # Fig. 3: order-3 tree root's children by step: 3, then 7, then 1.
        tree = bine_tree_distance_halving(8)
        assert tree.children(0) == ((0, 3), (1, 7), (2, 1))

    def test_root_to_root_distance_shorter_than_binomial(self):
        # Fig. 3 vs Fig. 2 box E: Bine joins order-2 trees at modulo
        # distance 3; binomial at distance 4.
        tree = bine_tree_distance_halving(8)
        first_child = tree.children(0)[0][1]
        assert modulo_distance(0, first_child, 8) == 3

    @pytest.mark.parametrize("p", POWERS)
    def test_spanning_and_unique_reach(self, p):
        tree = bine_tree_distance_halving(p)
        # build_tree validates; also check every non-root has a parent
        assert tree.parent(tree.root) is None
        for r in range(p):
            if r != tree.root:
                assert tree.parent(r) is not None

    @pytest.mark.parametrize("p", POWERS)
    @pytest.mark.parametrize("root", [0, 1, 5])
    def test_rotation_by_root(self, p, root):
        root %= p
        base = bine_tree_distance_halving(p, 0)
        rot = bine_tree_distance_halving(p, root)
        for step in range(base.num_steps):
            expect = {((u + root) % p, (v + root) % p) for u, v in base.edges[step]}
            assert set(rot.edges[step]) == expect

    @pytest.mark.parametrize("p", POWERS)
    def test_subtrees_circular_contiguous(self, p):
        # The property gather/scatter rely on (Fig. 7).
        tree = bine_tree_distance_halving(p)
        for r in range(p):
            wrap_range_from_set(tree.subtree(r), p)  # raises otherwise

    @pytest.mark.parametrize("p", [8, 16, 32, 64])
    def test_distance_shrinks_by_step(self, p):
        # Distance-halving: step i edges span ~2^{s-i}/3 — non-increasing
        # (paper footnote 3: off by at most ±1 from exact halving, and the
        # last two steps both span distance 1).
        tree = bine_tree_distance_halving(p)
        prev = None
        for step in range(tree.num_steps):
            dists = {modulo_distance(u, v, p) for u, v in tree.edges[step]}
            assert len(dists) == 1  # all edges of a step span the same distance
            d = dists.pop()
            if prev is not None:
                assert d <= prev
            prev = d


class TestNuLabels:
    def test_fig6_table(self):
        # Fig. 6: ν for ranks 0..7 = 000 001 011 100 110 111 101 010.
        assert nu_labels(8) == [0b000, 0b001, 0b011, 0b100, 0b110, 0b111, 0b101, 0b010]

    @pytest.mark.parametrize("p", POWERS)
    def test_bijection(self, p):
        inv = nu_inverse(p)  # raises if not bijective
        for r in range(p):
            assert inv[nu_label(r, p)] == r

    @pytest.mark.parametrize("p", POWERS)
    def test_parity_alternation(self, p):
        # Partners differ in one ν bit and always pair even with odd ranks
        # (Sec. 3.2.2: sums of powers of −2 are odd).
        if p < 4:
            return
        for r in range(p):
            for j in range(p.bit_length() - 1):
                q = dd_partner(r, j, p)
                assert (r + q) % 2 == 1


class TestDistanceDoublingTree:
    def test_fig6_rank2(self):
        # Sec. 3.2.2: rank 2 receives at step 1 (ν=011), then sends to 5 at
        # step 2 (011 ⊕ 100 = 111 → rank 5).
        assert dd_recv_step(2, 8) == 1
        assert dd_partner(2, 2, 8) == 5

    @pytest.mark.parametrize("p", POWERS)
    def test_tree_valid(self, p):
        tree = bine_tree_distance_doubling(p)
        assert tree.num_steps == p.bit_length() - 1

    @pytest.mark.parametrize("p", [8, 16, 32, 64])
    def test_subtrees_contiguous_in_pi_space(self, p):
        # App. D.2 / Sec. 4.3.1: subtree π windows are contiguous, enabling
        # the single-segment large broadcast/reduce.
        s = p.bit_length() - 1
        nus = nu_labels(p)
        pi = [bit_reverse(nus[b], s) for b in range(p)]
        tree = bine_tree_distance_doubling(p)
        for r in range(p):
            pos = sorted(pi[v] for v in tree.subtree(r))
            assert pos == list(range(pos[0], pos[0] + len(pos)))

    @pytest.mark.parametrize("p", [8, 16, 32, 64])
    def test_distance_grows_by_step(self, p):
        # Non-decreasing (the first two steps both span distance 1).
        tree = bine_tree_distance_doubling(p)
        prev = None
        for step in range(tree.num_steps):
            dists = {modulo_distance(u, v, p) for u, v in tree.edges[step]}
            assert len(dists) == 1
            d = dists.pop()
            if prev is not None:
                assert d >= prev
            prev = d


class TestTreeQueries:
    def test_depth_and_leaves(self):
        tree = bine_tree_distance_halving(8)
        assert tree.depth(tree.root) == 0
        for leaf in tree.leaves():
            assert not tree.children(leaf)
        # every rank is root, internal, or leaf; total subtree of root = all
        assert sorted(tree.subtree(0)) == list(range(8))

    def test_subtree_at_step(self):
        tree = bine_tree_distance_halving(8)
        # before any step, subtree-at-step-0 of the root is everything
        assert sorted(tree.subtree_at_step(0, 0)) == list(range(8))
        # after all steps, only itself
        assert tree.subtree_at_step(0, tree.num_steps) == [0]

    def test_all_edges_count(self):
        tree = bine_tree_distance_halving(16)
        assert len(tree.all_edges()) == 15  # spanning tree

    def test_invalid_rank_raises(self):
        tree = bine_tree_distance_halving(8)
        with pytest.raises(ValueError):
            tree.recv_step(8)
