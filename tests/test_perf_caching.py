"""Correctness of the sweep-pipeline caches (labels, routes, validation, disk).

The fast pipeline must be a pure optimization: cached label tables equal
the recomputed definitions, shared route tables produce the same profiles
as per-call routing, skipping validation never changes a schedule, and the
on-disk profile cache round-trips profiles and evaluated times exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import ProfileCache, clear_memo_caches, sweep_system
from repro.collectives.common import Strategy, global_pi, global_pi_inv
from repro.collectives.butterfly_collectives import (
    allgather_butterfly,
    reduce_scatter_butterfly,
)
from repro.collectives.registry import ALGORITHMS
from repro.core.bine_tree import nu_inverse, nu_label, nu_labels
from repro.core.butterfly import bine_butterfly_doubling
from repro.core.negabinary import (
    bit_reverse,
    max_positive,
    rank_to_nb,
    rank_to_nb_table,
    to_negabinary,
)
from repro.model.simulator import RouteTable, evaluate_time, profile_schedule
from repro.runtime.schedule import (
    Schedule,
    Step,
    Transfer,
    schedule_validation,
    validation_enabled,
)
from repro.runtime.errors import ScheduleError
from repro.systems import lumi
from repro.topology.mapping import block_mapping

POW2 = [2, 4, 8, 16, 32, 64, 128, 256]


def _reference_rank_to_nb(rank: int, p: int) -> int:
    """rank2nb from first principles (paper Sec. 2.3.1), bypassing caches."""
    s = p.bit_length() - 1
    m = max_positive(s)
    return to_negabinary(rank if rank <= m else rank - p)


def _reference_nu(rank: int, p: int) -> int:
    if rank == 0:
        h = 0
    elif rank % 2 == 0:
        h = _reference_rank_to_nb(p - rank, p)
    else:
        h = _reference_rank_to_nb(rank, p)
    return h ^ (h >> 1)


class TestLabelTables:
    @pytest.mark.parametrize("p", POW2)
    def test_rank_to_nb_table_matches_definition(self, p):
        table = rank_to_nb_table(p)
        assert len(table) == p
        for r in range(p):
            assert table[r] == _reference_rank_to_nb(r, p)
            assert rank_to_nb(r, p) == table[r]

    @pytest.mark.parametrize("p", POW2)
    def test_nu_tables_match_definition(self, p):
        labels = nu_labels(p)
        assert labels == [_reference_nu(r, p) for r in range(p)]
        for r in range(p):
            assert nu_label(r, p) == labels[r]
        inv = nu_inverse(p)
        assert [inv[v] for v in labels] == list(range(p))

    @pytest.mark.parametrize("p", POW2)
    def test_pi_tables_match_definition(self, p):
        s = p.bit_length() - 1
        pi = global_pi(p)
        assert pi == [bit_reverse(_reference_nu(b, p), s) for b in range(p)]
        inv = global_pi_inv(p)
        assert [inv[pos] for pos in pi] == list(range(p))

    def test_tables_survive_cache_clear(self):
        before = nu_labels(64)
        clear_memo_caches()
        assert nu_labels(64) == before


class TestSharedRouteTable:
    def test_shared_routes_equal_private_routes(self):
        topo = lumi().build_topology()
        mapping = block_mapping(32)
        shared = RouteTable(topo)
        for flavor in ("bine-send", "bine-natural"):
            for builder in (
                lambda bf, n: allgather_butterfly(bf, n, Strategy.NATURAL),
                lambda bf, n: reduce_scatter_butterfly(bf, n, "sum", Strategy.NATURAL),
            ):
                sched = builder(bine_butterfly_doubling(32), 32)
                private = profile_schedule(sched, topo, mapping)
                reused = profile_schedule(sched, topo, mapping, routes=shared)
                assert private == reused

    def test_route_table_rejects_foreign_topology(self):
        topo_a = lumi().build_topology()
        topo_b = lumi().build_topology()
        sched = allgather_butterfly(bine_butterfly_doubling(8), 8)
        with pytest.raises(ValueError, match="different topology"):
            profile_schedule(sched, topo_a, block_mapping(8), routes=RouteTable(topo_b))


class TestOptionalValidation:
    def _overlapping_schedule(self) -> Schedule:
        # two non-reducing writes into the same destination region
        sched = Schedule(3)
        sched.add(
            Step(
                transfers=(
                    Transfer(0, 2, "vec", "vec", ((0, 4),), ((0, 4),)),
                    Transfer(1, 2, "vec", "vec", ((0, 4),), ((2, 6),)),
                )
            )
        )
        return sched

    def test_finalize_validates_by_default(self):
        assert validation_enabled()
        with pytest.raises(ScheduleError, match="overlapping"):
            self._overlapping_schedule().finalize()

    def test_finalize_skips_when_disabled(self):
        with schedule_validation(False):
            assert not validation_enabled()
            sched = self._overlapping_schedule().finalize()
        assert sched.num_steps == 1

    def test_env_var_overrides_context(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        with schedule_validation(False):
            assert validation_enabled()
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert not validation_enabled()

    def test_empty_env_var_behaves_like_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "")
        assert validation_enabled()  # the `export REPRO_VALIDATE=` idiom
        with schedule_validation(False):
            assert not validation_enabled()

    def test_reducing_overlap_still_allowed(self):
        sched = Schedule(3)
        sched.add(
            Step(
                transfers=(
                    Transfer(0, 2, "vec", "vec", ((0, 4),), ((0, 4),), op="sum"),
                    Transfer(1, 2, "vec", "vec", ((0, 4),), ((0, 4),), op="sum"),
                )
            )
        )
        sched.finalize()  # must not raise

    @pytest.mark.parametrize("name", ["bine-send", "bine-natural", "bine-permute"])
    def test_unvalidated_schedules_identical(self, name):
        spec = ALGORITHMS[("allgather", name)]
        validated = spec.build(16, 16)
        with schedule_validation(False):
            unvalidated = spec.build(16, 16)
        assert validated.p == unvalidated.p
        assert validated.meta == unvalidated.meta
        assert validated.steps == unvalidated.steps  # transfer-for-transfer


class TestDiskCache:
    def _sweep(self, tmp_path, **kwargs):
        preset = lumi()
        return sweep_system(
            preset,
            ("allgather",),
            node_counts=(8, 16),
            vector_bytes=(1024, 65536),
            disk_dir=tmp_path / "cache",
            **kwargs,
        )

    def test_round_trip_preserves_profiles_and_times(self, tmp_path):
        preset = lumi()
        spec = ALGORITHMS[("allgather", "bine-send")]
        cold = ProfileCache(preset, placement="scheduler", disk_dir=tmp_path / "c")
        warm = ProfileCache(preset, placement="scheduler", disk_dir=tmp_path / "c")
        p_cold = cold.get(spec, 16)
        p_warm = warm.get(spec, 16)
        assert p_cold == p_warm
        for n in (1, 100, 10**6):
            m_cold = evaluate_time(p_cold, preset.params, n)
            m_warm = evaluate_time(p_warm, preset.params, n)
            assert m_cold.time == m_warm.time  # bit-for-bit
            assert m_cold.global_bytes == m_warm.global_bytes
            assert m_cold.bytes_by_class == m_warm.bytes_by_class

    def test_none_results_cached(self, tmp_path):
        preset = lumi()
        spec = ALGORITHMS[("allgather", "bine-send")]  # pow2-only
        cold = ProfileCache(preset, placement="scheduler", disk_dir=tmp_path / "c")
        assert cold.get(spec, 24) is None
        warm = ProfileCache(preset, placement="scheduler", disk_dir=tmp_path / "c")
        assert warm.get(spec, 24) is None

    def test_warm_sweep_identical_to_cold(self, tmp_path):
        cold = self._sweep(tmp_path)
        warm = self._sweep(tmp_path)
        assert cold == warm

    def test_cross_grid_warm_matches_own_cold(self, tmp_path):
        # Scheduler mappings are order-dependent RNG draws: a cache filled
        # by a (8, 16) campaign must not satisfy a (16,)-only campaign,
        # whose own cold mapping for p=16 is a different (first) draw.
        preset = lumi()
        kwargs = dict(collectives=("allgather",), vector_bytes=(1024,))
        sweep_system(
            preset, node_counts=(8, 16), disk_dir=tmp_path / "cache", **kwargs
        )
        narrow_cold = sweep_system(preset, node_counts=(16,), **kwargs)
        narrow_warm = sweep_system(
            preset, node_counts=(16,), disk_dir=tmp_path / "cache", **kwargs
        )
        assert narrow_warm == narrow_cold

    def test_corrupt_entry_rebuilt(self, tmp_path):
        cold = self._sweep(tmp_path)
        for f in (tmp_path / "cache").rglob("*.pkl"):
            f.write_bytes(b"not a pickle")
        rebuilt = self._sweep(tmp_path)
        assert cold == rebuilt


class TestParallelSweep:
    def test_parallel_matches_serial(self, tmp_path):
        preset = lumi()
        kwargs = dict(
            collectives=("allgather", "bcast"),
            node_counts=(8, 16),
            vector_bytes=(1024, 65536),
        )
        serial = sweep_system(preset, **kwargs)
        parallel = sweep_system(preset, workers=2, **kwargs)
        assert serial == parallel


class TestStepValidateSinglePass:
    def test_overlap_detected(self):
        step = Step(
            transfers=(
                Transfer(0, 2, "vec", "vec", ((0, 4),), ((0, 4),)),
                Transfer(1, 2, "vec", "vec", ((0, 3),), ((3, 6),)),
                Transfer(3, 2, "vec", "vec", ((0, 2),), ((5, 7),)),
            )
        )
        with pytest.raises(ScheduleError, match="overlapping"):
            step.validate(4)

    def test_disjoint_and_reducing_pass(self):
        step = Step(
            transfers=(
                Transfer(0, 2, "vec", "vec", ((0, 4),), ((0, 4),)),
                Transfer(1, 2, "vec", "vec", ((0, 4),), ((4, 8),)),
                Transfer(3, 2, "vec", "vec", ((0, 4),), ((2, 6),), op="sum"),
            )
        )
        step.validate(4)  # must not raise

    def test_rank_range_checked(self):
        step = Step(transfers=(Transfer(0, 9, "vec", "vec", ((0, 1),), ((0, 1),)),))
        with pytest.raises(ScheduleError, match="out of range"):
            step.validate(4)


class TestNumGroupsCache:
    def test_cached_value_stable(self):
        topo = lumi().build_topology()
        first = topo.num_groups
        assert topo.num_groups == first
        assert topo._num_groups_cache == first

    def test_matches_definition(self):
        topo = lumi().build_topology()
        assert topo.num_groups == len(
            {topo.group_of(v) for v in range(topo.num_nodes)}
        )


def test_transfer_nelems_cached_consistent():
    t = Transfer(0, 1, "vec", "vec", ((0, 3), (5, 9)), ((1, 4), (6, 10)))
    assert t.nelems == 7
    arr = np.array([0, 1, 2, 5, 6, 7])
    from repro.collectives.fastresp import sorted_runs

    assert sorted_runs(arr) == [(0, 3), (5, 8)]
    # large-array path agrees with the small-array scan
    big = np.concatenate([np.arange(0, 200), np.arange(300, 500)])
    assert sorted_runs(big) == [(0, 200), (300, 500)]
