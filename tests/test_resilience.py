"""Resilient campaign execution: cache corruption, worker crashes, exit codes.

Recovery paths must never change records: a truncated disk-cache entry
recomputes (warning, not crash), a crashed worker's shards re-run and
fall back to serial, and the CLI maps each runtime failure class to a
distinct exit code.
"""

from __future__ import annotations

import importlib
import pkgutil
import random
import sys
from contextlib import contextmanager
from functools import _lru_cache_wrapper

import pytest

from repro.analysis.sweep import (
    _CACHE_MAGIC,
    clear_memo_caches,
    memo_cache_registry,
    memo_cache_sizes,
    sweep_system,
)
from repro.cli.main import EXIT_CODES, main
from repro.faults import FaultSpec, _global_link_population, _group_members
from repro.runtime.errors import (
    CacheCorruptionError,
    FaultSpecError,
    TopologyPartitionedError,
    WorkerShardError,
)
from repro.systems import lumi, marenostrum5

SWEEP_KWARGS = dict(
    collectives=("allgather",),
    node_counts=(8, 16),
    vector_bytes=(1024, 65536),
)


class TestCacheCorruption:
    def _sweep(self, tmp_path, **kwargs):
        return sweep_system(
            lumi(), disk_dir=tmp_path / "cache", **SWEEP_KWARGS, **kwargs
        )

    def _entries(self, tmp_path):
        entries = sorted((tmp_path / "cache").rglob("*.pkl"))
        assert entries
        return entries

    def test_truncated_entries_recovered_bit_identical(self, tmp_path):
        cold = self._sweep(tmp_path)
        for f in self._entries(tmp_path):
            blob = f.read_bytes()
            f.write_bytes(blob[: max(len(_CACHE_MAGIC) + 8, len(blob) // 2)])
        with pytest.warns(RuntimeWarning, match="truncated"):
            rebuilt = self._sweep(tmp_path)
        assert rebuilt == cold
        # the recompute republished sound entries: warm again, no warning
        assert self._sweep(tmp_path) == cold

    def test_stale_header_recovered(self, tmp_path):
        cold = self._sweep(tmp_path)
        for f in self._entries(tmp_path):
            f.write_bytes(b"RPCACHE1" + f.read_bytes()[len(_CACHE_MAGIC):])
        with pytest.warns(RuntimeWarning, match="stale cache header"):
            assert self._sweep(tmp_path) == cold

    def test_unpicklable_payload_recovered(self, tmp_path):
        cold = self._sweep(tmp_path)
        for f in self._entries(tmp_path):
            junk = b"\x00junk payload"
            f.write_bytes(_CACHE_MAGIC + len(junk).to_bytes(8, "little") + junk)
        with pytest.warns(RuntimeWarning, match="unreadable payload"):
            assert self._sweep(tmp_path) == cold


class TestWorkerCrashRecovery:
    def test_crashed_shards_fall_back_to_serial(self, monkeypatch):
        serial = sweep_system(lumi(), **SWEEP_KWARGS)
        monkeypatch.setenv("REPRO_TEST_CRASH_SHARD", "1")
        with pytest.warns(RuntimeWarning, match="crashed or timed out"):
            recovered = sweep_system(lumi(), workers=2, **SWEEP_KWARGS)
        assert recovered == serial

    def test_fallback_disabled_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_SHARD", "1")
        monkeypatch.setenv("REPRO_SHARD_FALLBACK", "0")
        with pytest.raises(WorkerShardError, match="shard"):
            sweep_system(lumi(), workers=2, **SWEEP_KWARGS)

    def test_healthy_pool_unaffected(self):
        serial = sweep_system(lumi(), **SWEEP_KWARGS)
        assert sweep_system(lumi(), workers=2, **SWEEP_KWARGS) == serial


class TestConcurrentCacheWriters:
    def test_two_processes_race_same_entries(self, tmp_path):
        """Two processes cold-filling one disk cache must both succeed.

        The fsync+rename publish protocol makes concurrent writers of the
        same entry last-writer-wins with no torn intermediate state: a
        reader either sees a complete entry or none at all.  Both racers
        must produce the serial records, and the cache they leave behind
        must serve a warm run bit-identically.
        """
        import subprocess
        import sys as _sys

        serial = sweep_system(lumi(), **SWEEP_KWARGS)
        script = (
            "import json, sys\n"
            "from repro.analysis.sweep import sweep_system\n"
            "from repro.systems import lumi\n"
            "recs = sweep_system(lumi(), collectives=('allgather',),\n"
            "                    node_counts=(8, 16),\n"
            "                    vector_bytes=(1024, 65536),\n"
            "                    disk_dir=sys.argv[1])\n"
            "json.dump([r.to_dict() for r in recs], open(sys.argv[2], 'w'))\n"
        )
        procs = [
            subprocess.Popen(
                [_sys.executable, "-c", script, str(tmp_path / "cache"),
                 str(tmp_path / f"out{i}.json")],
                env={**__import__('os').environ, "PYTHONPATH": "src"},
            )
            for i in range(2)
        ]
        assert [p.wait(timeout=300) for p in procs] == [0, 0]
        import json

        expected = [r.to_dict() for r in serial]
        for i in range(2):
            got = json.load(open(tmp_path / f"out{i}.json"))
            assert got == expected, f"racer {i} diverged"
        # the surviving cache entries are sound: warm run, no warnings
        with warnings_as_errors():
            warm = sweep_system(
                lumi(), disk_dir=tmp_path / "cache", **SWEEP_KWARGS
            )
        assert warm == serial


@contextmanager
def warnings_as_errors():
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        yield


class TestMemoCacheRegistry:
    def _populate(self):
        sweep_system(lumi(), collectives=("allgather",), node_counts=(16,),
                     vector_bytes=(1024,))
        from repro.collectives.registry import build
        from repro.collectives.verify import run_and_check

        run_and_check(build("allgather", "bine-send", 8, 8), seed=0)

    def test_clear_empties_every_registered_cache(self):
        self._populate()
        sizes = memo_cache_sizes()
        assert any(size > 0 for size in sizes.values())
        clear_memo_caches()
        assert all(size == 0 for size in memo_cache_sizes().values())

    def test_registry_covers_every_module_level_cache(self):
        """Scan the whole package: no memo cache may escape the registry."""
        import repro

        for mod in pkgutil.walk_packages(repro.__path__, "repro."):
            importlib.import_module(mod.name)
        registered = [clearer for _, clearer in memo_cache_registry().values()]
        missing = []
        for name, module in sorted(sys.modules.items()):
            if not name.startswith("repro."):
                continue
            for attr, obj in vars(module).items():
                if isinstance(obj, _lru_cache_wrapper):
                    if obj.cache_clear not in registered:
                        missing.append(f"{name}.{attr}")
                elif isinstance(obj, dict) and attr.endswith("_CACHE"):
                    if obj.clear not in registered:
                        missing.append(f"{name}.{attr}")
        assert not missing, (
            f"memo caches outside memo_cache_registry(): {missing} — "
            "register them so clear_memo_caches() stays complete"
        )


def _partitioning_seed() -> int:
    """A seed whose single failed fat-tree uplink cuts off subtree 0 or 1.

    MareNostrum 5 block placement with 256 nodes spans subtrees 0-1 (160
    nodes each); a failed ``("up"/"down", g<2)`` uplink leaves some pair
    with no surviving route (the fat tree has exactly one up and one
    down bundle per subtree, so no detour exists).
    """
    topo = marenostrum5().build_topology()
    members = _group_members(topo)
    reps = {g: nodes[0] for g, nodes in members.items()}
    population = _global_link_population(topo, reps)
    for seed in range(1000):
        (key,) = random.Random(seed).sample(population, 1)
        if key[1] < 2:
            return seed
    raise AssertionError("no partitioning seed under 1000")


class TestCliExitCodes:
    def test_taxonomy_codes_distinct(self):
        codes = list(EXIT_CODES.values())
        assert sorted(codes) == [3, 4, 5, 6, 7, 8, 9, 10]
        assert EXIT_CODES[FaultSpecError] == 3
        assert EXIT_CODES[TopologyPartitionedError] == 4
        assert EXIT_CODES[CacheCorruptionError] == 5
        assert EXIT_CODES[WorkerShardError] == 6
        from repro.runtime.errors import (
            DESEngineError,
            InterruptedRunError,
            JournalError,
            TuneArtifactError,
        )

        assert EXIT_CODES[TuneArtifactError] == 7
        assert EXIT_CODES[DESEngineError] == 8
        assert EXIT_CODES[InterruptedRunError] == 9
        assert EXIT_CODES[JournalError] == 10

    def test_bad_fault_spec_exits_3(self, capsys):
        code = main(["sweep", "--system", "lumi", "--collective", "bcast",
                     "--nodes", "16", "--sizes", "1024",
                     "--faults", "bogus=1"])
        assert code == 3
        assert "FaultSpecError" in capsys.readouterr().err

    def test_torus_global_faults_exit_3(self, capsys):
        code = main(["sweep", "--system", "fugaku", "--collective", "bcast",
                     "--nodes", "16", "--sizes", "1024",
                     "--faults", "links=1"])
        assert code == 3
        assert "global links" in capsys.readouterr().err

    def test_partitioned_topology_exits_4(self, capsys):
        seed = _partitioning_seed()
        code = main(["sweep", "--system", "marenostrum5",
                     "--placement", "block", "--collective", "bcast",
                     "--nodes", "256", "--sizes", "1024",
                     "--faults", f"links=1,seed={seed}"])
        assert code == 4
        assert "no surviving route" in capsys.readouterr().err

    def test_worker_shard_error_exits_6(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_SHARD", "1")
        monkeypatch.setenv("REPRO_SHARD_FALLBACK", "0")
        code = main(["sweep", "--system", "lumi", "--collective", "allgather",
                     "--nodes", "16", "--sizes", "1024", "--workers", "2"])
        assert code == 6
        assert "WorkerShardError" in capsys.readouterr().err

    def test_cache_corruption_exits_5(self, capsys, monkeypatch):
        # recovery normally downgrades corruption to a warning; the exit
        # code still exists for paths that surface it as an error
        from repro.cli import commands

        def _boom(args):
            raise CacheCorruptionError("entry.pkl: truncated entry")

        monkeypatch.setattr(commands, "cmd_list", _boom)
        assert main(["list"]) == 5
        assert "CacheCorruptionError" in capsys.readouterr().err

    def test_duplicate_fault_scenarios_exit_3(self, capsys):
        code = main(["sweep", "--system", "lumi", "--collective", "bcast",
                     "--nodes", "16", "--sizes", "1024",
                     "--faults", "links=1", "--faults", "links=1"])
        assert code == 3
        assert "duplicate" in capsys.readouterr().err


TINY_MANIFEST = """
[campaign]
name = "tiny-degraded"
system = "lumi"

[[grid]]
collectives = ["bcast"]
node_counts = [16]
vector_bytes = [1024, 65536]

[[faults]]

[[faults]]
failed_links = 2
seed = 13

[summary]
family = "bine"
baseline = "binomial"
"""


class TestDegradedCampaignEndToEnd:
    @pytest.fixture()
    def manifest_path(self, tmp_path):
        path = tmp_path / "tiny_degraded.toml"
        path.write_text(TINY_MANIFEST)
        return path

    def test_campaign_plot_compare(self, manifest_path, tmp_path, capsys):
        records_json = tmp_path / "records.json"
        assert main(["campaign", str(manifest_path), "--format", "json",
                     "--output", str(records_json)]) == 0
        capsys.readouterr()

        out_dir = tmp_path / "report"
        assert main(["plot", "--manifest", str(manifest_path),
                     "--out", str(out_dir)]) == 0
        capsys.readouterr()
        names = {p.name for p in out_dir.iterdir()}
        assert "heatmap_bcast_lumi.svg" in names            # pristine pane
        assert "heatmap_bcast_lumi_links2-seed13.svg" in names
        assert "index.md" in names

        # rerunning the manifest reproduces the frozen records bit for bit
        assert main(["compare", str(records_json), str(manifest_path)]) == 0
        capsys.readouterr()
        # a different scenario set drifts (exit 1, not a crash)
        assert main(["compare", str(records_json), str(manifest_path),
                     "--faults", "links=3,seed=13"]) == 1

    def test_shipped_manifest_parses(self):
        from repro.cli.manifest import load_manifest

        manifest = load_manifest("campaigns/degraded_lumi.toml")
        assert [s.label for s in manifest.faults] == [
            "none", "links1-seed13", "links2-seed13", "links3-seed13",
        ]
