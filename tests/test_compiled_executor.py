"""Bit-identity and semantics tests for the compiled columnar executor.

The acceptance contract of `repro.runtime.compiled`: for **every**
registered algorithm of all eight collectives, at small power-of-two and
non-power-of-two rank counts, and for at least two input seeds, the
compiled plan must leave the buffer matrix bit-identical to what the
reference executor leaves in its `RankBuffers` — plus trace parity, batch
consistency, and the executor-semantics corner cases (sendrecv snapshots,
write ordering, duplicate reductions, error reporting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.verifygrid import verify_cell, verify_grid
from repro.collectives.registry import ALGORITHMS, COLLECTIVES
from repro.collectives.verify import (
    check_matrix,
    clear_plan_cache,
    compiled_plan_for,
    init_buffers,
    init_matrix,
    run_and_check,
    run_and_check_compiled,
)
from repro.runtime.buffers import RankBuffers
from repro.runtime.compiled import (
    BufferLayout,
    buffers_used,
    compile_plan,
    matrix_from_buffers,
    matrix_to_buffers,
)
from repro.runtime.errors import BufferMismatchError, ScheduleError
from repro.runtime.executor import execute
from repro.runtime.schedule import LocalCopy, Schedule, Step, Transfer

#: acceptance grid — non-power-of-two included
PS = (4, 8, 16, 17, 32)
SEEDS = (0, 1)


def _grid_cases():
    for (coll, name), spec in sorted(ALGORITHMS.items()):
        for p in PS:
            yield pytest.param(spec, p, id=f"{coll}/{name}-p{p}")


class TestBitIdentityAcrossRegistry:
    @pytest.mark.parametrize("spec,p", _grid_cases())
    def test_compiled_matches_reference(self, spec, p):
        n = 4 * p
        if spec.pow2_only and p & (p - 1):
            pytest.skip("pow2-only algorithm")
        try:
            schedule = spec.build(p, n)
        except ValueError as exc:
            pytest.skip(f"constraint: {exc}")
        plan = compile_plan(schedule)
        matrices = run_and_check_compiled(schedule, SEEDS, plan)
        for i, seed in enumerate(SEEDS):
            reference = init_buffers(schedule, seed)
            execute(schedule, reference)
            ref_matrix = matrix_from_buffers(reference, plan.layout)
            assert np.array_equal(ref_matrix, matrices[i]), (
                f"{spec.collective}/{spec.name} p={p} seed={seed}: "
                "compiled buffers differ from reference"
            )

    def test_every_collective_covered(self):
        # the parametrized grid above spans the full registry by construction;
        # pin that the registry itself still spans all eight collectives
        assert {c for c, _ in ALGORITHMS} == set(COLLECTIVES)


class TestTraceParity:
    @pytest.mark.parametrize(
        "coll,name", [("allreduce", "bine-rsag"), ("allgather", "bine-blocks"),
                      ("bcast", "scatter-allgather"), ("alltoall", "bruck")]
    )
    def test_trace_matches_reference(self, coll, name):
        schedule = ALGORITHMS[(coll, name)].build(16, 64)
        bufs = init_buffers(schedule, 0)
        ref = execute(schedule, bufs)
        plan = compile_plan(schedule)
        got = plan.execute(init_matrix(schedule, plan.layout, 0))
        assert got.steps_run == ref.steps_run
        assert got.transfers_run == ref.transfers_run
        assert got.elems_moved == ref.elems_moved
        assert got.local_elems_moved == ref.local_elems_moved
        assert got.per_step_elems == ref.per_step_elems


class TestBatchConsistency:
    def test_batch_equals_single_runs(self):
        schedule = ALGORITHMS[("allreduce", "bine-rsag")].build(16, 64)
        plan = compile_plan(schedule)
        seeds = (0, 1, 2)
        batch = np.stack([init_matrix(schedule, plan.layout, s) for s in seeds])
        plan.execute_batch(batch)
        for i, seed in enumerate(seeds):
            single = init_matrix(schedule, plan.layout, seed)
            plan.execute(single)
            assert np.array_equal(batch[i], single)
            check_matrix(schedule, batch[i], plan.layout, seed)

    def test_batch_shape_rejected(self):
        schedule = ALGORITHMS[("bcast", "bine")].build(8, 8)
        plan = compile_plan(schedule)
        with pytest.raises(ValueError):
            plan.execute_batch(plan.new_matrix())  # 2-D, not a batch
        with pytest.raises(ValueError):
            plan.execute(np.zeros((3, 3), dtype=np.int64))


class TestExecutorSemantics:
    """The corner cases of test_runtime.TestExecutorSemantics, compiled."""

    def _run(self, schedule: Schedule, bufs: RankBuffers):
        layout = BufferLayout(
            {name: max(bufs.get(r, name).shape[0] for r in range(bufs.p))
             for name in buffers_used(schedule)}
        )
        plan = compile_plan(schedule, layout)
        matrix = matrix_from_buffers(bufs, layout)
        plan.execute(matrix)
        return matrix_to_buffers(matrix, layout, bufs)

    def make_buffers(self, p, n):
        bufs = RankBuffers(p)
        bufs.allocate("vec", n, dtype=np.int64)
        for r in range(p):
            bufs.set(r, "vec", np.full(n, r, dtype=np.int64))
        return bufs

    def test_concurrent_swap_uses_pre_state(self):
        bufs = self.make_buffers(2, 4)
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(
            Transfer(0, 1, "vec", "vec", ((0, 4),), ((0, 4),)),
            Transfer(1, 0, "vec", "vec", ((0, 4),), ((0, 4),)),
        )))
        self._run(sched, bufs)
        assert (bufs.get(0, "vec") == 1).all()
        assert (bufs.get(1, "vec") == 0).all()

    def test_overlapping_reduces_accumulate(self):
        bufs = self.make_buffers(3, 4)
        sched = Schedule(3, meta={})
        sched.add(Step(transfers=(
            Transfer(0, 2, "vec", "vec", ((0, 4),), ((0, 4),), op="sum"),
            Transfer(1, 2, "vec", "vec", ((0, 4),), ((0, 4),), op="sum"),
        )))
        self._run(sched, bufs)
        assert (bufs.get(2, "vec") == 3).all()  # 2 + 0 + 1

    def test_overwrite_then_reduce_sees_new_value(self):
        # later reduce must combine with the earlier transfer's write
        bufs = self.make_buffers(3, 2)
        sched = Schedule(3, meta={})
        sched.add(Step(transfers=(
            Transfer(1, 0, "vec", "vec", ((0, 2),), ((0, 2),)),
            Transfer(2, 0, "vec", "vec", ((0, 2),), ((0, 2),), op="sum"),
        )))
        ref = self.make_buffers(3, 2)
        execute(sched, ref)
        self._run(sched, bufs)
        assert bufs.get(0, "vec").tolist() == ref.get(0, "vec").tolist() == [3, 3]

    def test_multi_segment_pack_unpack(self):
        bufs = RankBuffers(2)
        bufs.allocate("vec", 6, dtype=np.int64)
        bufs.set(0, "vec", np.arange(6, dtype=np.int64))
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(
            Transfer(0, 1, "vec", "vec", ((0, 2), (4, 6)), ((2, 6),)),
        )))
        self._run(sched, bufs)
        assert bufs.get(1, "vec").tolist() == [0, 0, 0, 1, 4, 5]

    def test_local_copies_sequential_on_same_rank(self):
        bufs = RankBuffers(1)
        bufs.allocate("vec", 4, dtype=np.int64)
        bufs.allocate("tmp", 4, dtype=np.int64)
        bufs.set(0, "vec", np.array([1, 2, 3, 4], dtype=np.int64))
        sched = Schedule(1, meta={})
        # second pre copy reads what the first one wrote — must not be batched
        sched.add(Step(pre=(
            LocalCopy(0, "vec", "tmp", ((0, 4),), ((0, 4),)),
            LocalCopy(0, "tmp", "vec", ((0, 2),), ((2, 4),)),
        )))
        self._run(sched, bufs)
        assert bufs.get(0, "vec").tolist() == [1, 2, 1, 2]
        assert bufs.get(0, "tmp").tolist() == [1, 2, 3, 4]

    def test_segment_beyond_buffer_rejected_at_compile(self):
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(
            Transfer(0, 1, "vec", "vec", ((0, 8),), ((0, 8),)),
        )))
        with pytest.raises(BufferMismatchError):
            compile_plan(sched, BufferLayout({"vec": 4}))

    def test_rank_out_of_range_rejected_at_compile(self):
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(
            Transfer(0, 5, "vec", "vec", ((0, 1),), ((0, 1),)),
        )))
        with pytest.raises(ScheduleError):
            compile_plan(sched, BufferLayout({"vec": 4}))

    def test_unknown_buffer_rejected_at_compile(self):
        sched = Schedule(2, meta={})
        sched.add(Step(transfers=(
            Transfer(0, 1, "vec", "other", ((0, 1),), ((0, 1),)),
        )))
        with pytest.raises(BufferMismatchError):
            compile_plan(sched, BufferLayout({"vec": 4}))


class TestPlanCache:
    def test_cache_hit_returns_same_plan(self):
        clear_plan_cache()
        s1, p1 = compiled_plan_for("bcast", "bine", 8, 32)
        s2, p2 = compiled_plan_for("bcast", "bine", 8, 32)
        assert p1 is p2 and s1 is s2
        _, p3 = compiled_plan_for("bcast", "bine", 8, 64)  # n is part of the key
        assert p3 is not p1
        clear_plan_cache()
        _, p4 = compiled_plan_for("bcast", "bine", 8, 32)
        assert p4 is not p1

    def test_stub_schedule_is_light_but_sufficient(self):
        clear_plan_cache()
        stub, plan = compiled_plan_for("alltoall", "bruck", 8, 32)
        assert stub.num_steps == 0  # steps dropped
        assert stub.meta["collective"] == "alltoall"
        # the stub still drives init + check end to end
        run_and_check_compiled(stub, (0, 1), plan)

    def test_clear_memo_caches_reaches_plan_cache(self):
        from repro.analysis.sweep import clear_memo_caches
        from repro.collectives import verify as vf

        compiled_plan_for("bcast", "bine", 8, 32)
        assert vf._PLAN_CACHE
        clear_memo_caches()
        assert not vf._PLAN_CACHE


class TestVerifyGrid:
    def test_cell_statuses(self):
        assert verify_cell("bcast", "bine", 8, 32).status == "ok"
        assert verify_cell("bcast", "bine", 12, 48).status == "skipped"
        r = verify_cell("allgather", "sparbit", 1024, 1024)
        assert r.status == "skipped" and "capped" in r.detail

    def test_engines_agree_on_statuses(self):
        grid = dict(node_counts=(8, 17), seeds=(0,), elems_per_rank=2)
        compiled = verify_grid(("reduce_scatter",), engine="compiled", **grid)
        reference = verify_grid(("reduce_scatter",), engine="reference", **grid)
        both = verify_grid(("reduce_scatter",), engine="both", **grid)
        strip = lambda rs: [(r.collective, r.algorithm, r.p, r.status) for r in rs]
        assert strip(compiled) == strip(reference) == strip(both)
        assert any(r.status == "ok" for r in compiled)

    def test_broken_schedule_reported_failed(self, monkeypatch):
        from repro.collectives.registry import AlgorithmSpec

        def broken(p, n, root=0, op="sum"):
            # claims to broadcast but moves nothing
            return Schedule(p, meta={"collective": "bcast", "n": n, "root": 0})

        spec = AlgorithmSpec("bcast", "broken", "bine", broken, pow2_only=False)
        monkeypatch.setitem(ALGORITHMS, ("bcast", "broken"), spec)
        for engine in ("compiled", "reference", "both"):
            r = verify_cell("bcast", "broken", 4, 8, engine=engine)
            assert r.status == "failed", engine
            assert "wrong" in r.detail
        clear_plan_cache()  # drop the broken cell's memoized plan

    def test_record_roundtrip_and_workers(self):
        from repro.analysis.verifygrid import VerifyRecord

        serial = verify_grid(("scatter",), (4, 8), seeds=(0,))
        parallel = verify_grid(("scatter",), (4, 8), seeds=(0,), workers=2)
        strip = lambda rs: [
            {**r.to_dict(), "elapsed_s": 0.0} for r in rs
        ]
        assert strip(serial) == strip(parallel)
        r = serial[0]
        assert VerifyRecord.from_dict(r.to_dict()) == r


class TestOracleHelpers:
    def test_run_and_check_matches_legacy_path(self):
        # init_buffers (matrix-backed) must feed the reference pipeline as before
        schedule = ALGORITHMS[("allgather", "bine-two-transmissions")].build(16, 64)
        run_and_check(schedule, seed=3)

    def test_matrix_roundtrip(self):
        schedule = ALGORITHMS[("alltoall", "bine")].build(8, 16)
        layout = BufferLayout.for_schedule(schedule)
        bufs = init_buffers(schedule, 5)
        matrix = matrix_from_buffers(bufs, layout)
        assert np.array_equal(matrix, init_matrix(schedule, layout, 5))
        restored = matrix_to_buffers(matrix, layout, init_buffers(schedule, 0))
        for r in range(8):
            for name in layout.names:
                assert np.array_equal(restored.get(r, name), bufs.get(r, name))
