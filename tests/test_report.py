"""Tests for the ``repro.report`` subsystem: figures, diffs, baselines, artifacts.

The golden-SVG tests pin the byte-determinism contract: the committed
``tests/data/golden_*.svg`` must equal a fresh render of the synthetic
record set, bit for bit.  Regenerate after an intentional figure change
with::

    PYTHONPATH=src python tests/test_report.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.sweep import SweepRecord
from repro.cli.campaign import run_campaign
from repro.cli.manifest import manifest_from_dict
from repro.report import (
    RecordSetError,
    boxplot_svg,
    check_baseline,
    diff_record_sets,
    heatmap_svg,
    load_record_set,
    record_set_from_records,
    records_digest,
    render_report,
    write_baseline,
)
from repro.report.diff import record_set_from_json
from repro.report.figures import boxplot_figure, heatmap_figure
from repro.report.svg import SvgCanvas, fmt

REPO_ROOT = Path(__file__).resolve().parent.parent
DATA_DIR = Path(__file__).parent / "data"

TINY_MANIFEST = {
    "campaign": {"name": "tiny", "system": "lumi"},
    "grid": [
        {
            "collectives": ["bcast"],
            "node_counts": [16],
            "vector_bytes": [1024, 65536],
        }
    ],
}


def synthetic_records() -> list[SweepRecord]:
    """A fixed, model-independent record set for golden figures.

    Covers the figure edge cases on purpose: a missing grid cell at
    (16, 64 KiB), a Bine win with and without a non-Bine competitor, a
    single-sample improvement distribution, and non-power-of-two p=6.
    """
    rows = [
        # (collective, algorithm, family, p, n_bytes, time, global_bytes)
        ("bcast", "bine", "bine", 4, 1024, 1.0e-6, 10.0),
        ("bcast", "binomial-dd", "binomial", 4, 1024, 1.3e-6, 14.0),
        ("bcast", "ring", "ring", 4, 65536, 2.0e-6, 20.0),
        ("bcast", "bine", "bine", 4, 65536, 2.5e-6, 18.0),
        ("bcast", "bine", "bine", 6, 1024, 1.1e-6, 11.0),
        ("bcast", "binomial-dd", "binomial", 6, 1024, 1.05e-6, 12.0),
        ("bcast", "bine", "bine", 16, 1024, 1.4e-6, 30.0),  # no competitor
        # (16, 65536) intentionally missing
        ("allreduce", "bine-rsag", "bine", 4, 1024, 3.0e-6, 40.0),
        ("allreduce", "rabenseifner", "sota", 4, 1024, 3.9e-6, 52.0),
        ("allreduce", "ring", "ring", 4, 65536, 6.0e-6, 80.0),
        ("allreduce", "bine-rsag", "bine", 4, 65536, 7.0e-6, 70.0),
    ]
    return [SweepRecord("testsys", *row) for row in rows]


GOLDEN_HEATMAP = DATA_DIR / "golden_heatmap.svg"
GOLDEN_BOXPLOT = DATA_DIR / "golden_boxplot.svg"


def render_goldens() -> dict[Path, str]:
    records = synthetic_records()
    return {
        GOLDEN_HEATMAP: heatmap_figure(records, "bcast", title="golden: bcast"),
        GOLDEN_BOXPLOT: boxplot_figure(
            records, ("bcast", "allreduce"), title="golden: improvement"
        ),
    }


# -- SVG layer ---------------------------------------------------------------


class TestSvg:
    def test_fmt_fixed(self):
        assert fmt(12.0) == "12"
        assert fmt(12.50) == "12.5"
        assert fmt(-0.0001) == "0"
        assert fmt(3) == "3"

    def test_canvas_escapes_text(self):
        c = SvgCanvas(10, 10)
        c.text(0, 0, "a<b&c")
        assert "a&lt;b&amp;c" in c.render()

    def test_canvas_no_timestamps(self):
        c = SvgCanvas(10, 10)
        c.rect(0, 0, 5, 5, fill="#fff")
        assert c.render() == SvgCanvas(10, 10).render().replace(
            "</svg>", '<rect x="0" y="0" width="5" height="5" fill="#fff"/>\n</svg>'
        )


# -- golden figures ----------------------------------------------------------


class TestGoldenFigures:
    @pytest.mark.parametrize("path", [GOLDEN_HEATMAP, GOLDEN_BOXPLOT])
    def test_golden_bytes(self, path):
        rendered = render_goldens()[path]
        assert path.exists(), (
            f"{path} missing — regenerate with "
            "`PYTHONPATH=src python tests/test_report.py --regen`"
        )
        assert path.read_text() == rendered + "\n", (
            f"{path.name} drifted from a fresh render; if the figure "
            "change is intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_report.py --regen`"
        )

    def test_render_is_deterministic(self):
        first = render_goldens()
        second = render_goldens()
        assert first == second

    def test_heatmap_marks_missing_and_bine_cells(self):
        svg = render_goldens()[GOLDEN_HEATMAP]
        assert "no record" in svg          # the (16, 64 KiB) hole
        assert ">BINE</text>" in svg       # bine win without competitor
        assert ">1.30</text>" in svg       # bine win ratio over binomial
        assert ">N</text>" in svg          # binomial letter at p=6
        assert ">R</text>" in svg          # ring letter at (4, 64 KiB)

    def test_boxplot_single_sample_and_empty_groups(self):
        # single improvement sample: box collapses to a line, no crash
        svg = boxplot_svg([("one", None), ("two", None)], title="empty")
        assert "no winning" in svg
        from repro.analysis.boxplot import box_stats

        svg = boxplot_svg([("single", box_stats([5.0]))])
        assert "n=1" in svg

    def test_unknown_family_fails_loudly(self):
        records = [SweepRecord("s", "bcast", "x", "mystery", 4, 32, 1e-6, 1.0),
                   SweepRecord("s", "bcast", "y", "ring", 4, 32, 2e-6, 1.0)]
        with pytest.raises(ValueError, match="mystery"):
            heatmap_figure(records, "bcast")


# -- record-set loading ------------------------------------------------------


class TestLoader:
    def test_sweep_records_roundtrip(self, tmp_path):
        records = synthetic_records()
        path = tmp_path / "records.json"
        path.write_text(json.dumps([r.to_dict() for r in records]))
        rs = load_record_set(path)
        assert rs.kind == "sweep"
        assert len(rs.rows) == len(records)

    def test_baseline_wrapper_unwraps(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(
            {"baseline_of": "x", "records": [r.to_dict() for r in synthetic_records()]}
        ))
        assert load_record_set(path).kind == "sweep"

    def test_verify_records(self):
        rows = [{
            "collective": "bcast", "algorithm": "bine", "family": "bine",
            "p": 8, "n": 32, "seeds": 2, "engine": "compiled",
            "status": "ok", "detail": "", "elapsed_s": 0.01,
        }]
        rs = record_set_from_json(rows, "verify")
        assert rs.kind == "verify"
        assert rs.rows[("bcast", "bine", 8, 32, 2, "compiled")]["status"] == "ok"

    def test_bench_blobs_parse_as_metrics(self):
        # the repo-root benchmark blobs must always load under the diff
        # engine (schema check): flat metrics, self-diff clean
        for name in ("BENCH_sweep.json", "BENCH_verify.json"):
            rs = load_record_set(REPO_ROOT / name)
            assert rs.kind == "metrics"
            assert len(rs.rows) > 5
            assert not diff_record_sets(rs, rs).drifted

    def test_duplicate_cells_rejected(self):
        rows = [synthetic_records()[0].to_dict()] * 2
        with pytest.raises(RecordSetError, match="duplicate"):
            record_set_from_json(rows, "dup")

    def test_row_missing_field_rejected(self):
        # first row complete, later row missing a field: clean error, not
        # a raw KeyError from deep inside the keying loop
        rows = [r.to_dict() for r in synthetic_records()[:3]]
        del rows[2]["time"]
        with pytest.raises(RecordSetError, match="row #2.*'time'"):
            record_set_from_json(rows, "partial")

    def test_to_records_roundtrip(self):
        records = synthetic_records()
        rs = record_set_from_records(records, "rt")
        assert rs.to_records() == records
        metrics = load_record_set(REPO_ROOT / "BENCH_sweep.json")
        with pytest.raises(RecordSetError, match="metrics"):
            metrics.to_records()

    def test_garbage_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(RecordSetError, match="not valid JSON"):
            load_record_set(bad)
        with pytest.raises(RecordSetError, match="neither sweep"):
            record_set_from_json([{"x": 1}], "weird")
        with pytest.raises(RecordSetError, match="array or object"):
            record_set_from_json(3, "scalar")
        with pytest.raises(RecordSetError, match="objects"):
            record_set_from_json([1, 2], "ints")


# -- diffing -----------------------------------------------------------------


class TestDiff:
    def sets(self):
        records = synthetic_records()
        return (record_set_from_records(records, "a"),
                record_set_from_records(records, "b"))

    def test_self_diff_clean(self):
        a, b = self.sets()
        diff = diff_record_sets(a, b)
        assert not diff.drifted
        assert diff.unchanged == len(a.rows)

    def test_changed_cell_named(self):
        a, _ = self.sets()
        records = synthetic_records()
        perturbed = records[:3] + [
            SweepRecord(**{**records[3].to_dict(), "time": records[3].time * 1.05})
        ] + records[4:]
        diff = diff_record_sets(a, record_set_from_records(perturbed, "b"))
        assert diff.drifted
        assert len(diff.changed) == 1
        (change,) = diff.changed
        assert change.fields[0].field == "time"
        assert change.fields[0].rel == pytest.approx(0.05 / 1.05, rel=1e-6)
        assert "bine" in a.key_str(change.key)

    def test_tolerance_absorbs_drift(self):
        a, _ = self.sets()
        records = synthetic_records()
        perturbed = [
            SweepRecord(**{**r.to_dict(), "time": r.time * (1 + 1e-7)})
            for r in records
        ]
        b = record_set_from_records(perturbed, "b")
        assert diff_record_sets(a, b, tolerance=1e-6).drifted is False
        assert diff_record_sets(a, b, tolerance=1e-9).drifted is True

    def test_added_and_removed(self):
        records = synthetic_records()
        a = record_set_from_records(records[:-1], "a")
        b = record_set_from_records(records[1:], "b")
        diff = diff_record_sets(a, b)
        assert len(diff.added) == 1 and len(diff.removed) == 1

    def test_family_retag_is_drift(self):
        records = synthetic_records()
        retagged = [SweepRecord(**{**records[0].to_dict(), "family": "sota"})]
        diff = diff_record_sets(
            record_set_from_records(records[:1], "a"),
            record_set_from_records(retagged, "b"),
        )
        assert diff.drifted
        assert diff.changed[0].fields[0].field == "family"
        assert diff.changed[0].fields[0].rel is None  # non-numeric: exact

    def test_disjoint_key_sets_surface_in_summary(self, tmp_path, capsys):
        # regression: two BENCH-style metric blobs with no keys in common
        # must surface every added/removed key in the summary — and say
        # outright that nothing aligned, instead of a quiet "0 changed"
        from repro.report.diff import diff_summary

        ref = tmp_path / "BENCH_old.json"
        cand = tmp_path / "BENCH_new.json"
        ref.write_text(json.dumps({"sweep_cold_s": 1.5, "sweep_warm_s": 0.2}))
        cand.write_text(json.dumps({"verify_cold_s": 3.0, "verify_warm_s": 0.4}))
        a = load_record_set(ref)
        b = load_record_set(cand)
        diff = diff_record_sets(a, b)
        assert diff.drifted
        assert len(diff.added) == 2 and len(diff.removed) == 2
        summary = diff_summary(diff)
        assert "2 added, 2 removed" in summary
        for key in ("sweep_cold_s", "sweep_warm_s", "verify_cold_s",
                    "verify_warm_s"):
            assert key in summary
        assert "share no cells" in summary
        # end to end through the CLI: exit 1 and the note on stdout
        from repro.cli.main import main

        assert main(["compare", str(ref), str(cand)]) == 1
        out = capsys.readouterr().out
        assert "share no cells" in out and "added verify_cold_s" in out

    def test_partial_overlap_has_no_disjoint_note(self):
        from repro.report.diff import diff_summary

        records = synthetic_records()
        diff = diff_record_sets(
            record_set_from_records(records[:-1], "a"),
            record_set_from_records(records[1:], "b"),
        )
        assert "share no cells" not in diff_summary(diff)

    def test_kind_mismatch_rejected(self):
        a, _ = self.sets()
        metrics = load_record_set(REPO_ROOT / "BENCH_sweep.json")
        with pytest.raises(RecordSetError, match="cannot diff"):
            diff_record_sets(a, metrics)

    def test_renderers_cover_all_sections(self):
        from repro.report.diff import diff_json, diff_markdown, diff_summary, diff_table

        records = synthetic_records()
        a = record_set_from_records(records, "a")
        perturbed = [
            SweepRecord(**{**r.to_dict(), "time": r.time * 2}) for r in records[:1]
        ] + records[2:]
        b = record_set_from_records(perturbed, "b")
        diff = diff_record_sets(a, b)
        summary = diff_summary(diff)
        assert "DRIFT" in summary and "changed" in summary and "removed" in summary
        assert "| changed |" in diff_markdown(diff)
        assert "changed" in diff_table(diff)
        payload = json.loads(diff_json(diff))
        assert payload["drifted"] is True
        assert payload["cells"]["changed"] == 1


# -- baseline gate -----------------------------------------------------------


class TestBaseline:
    def test_freeze_and_gate(self, tmp_path):
        manifest = manifest_from_dict(TINY_MANIFEST)
        manifest_path = tmp_path / "tiny.json"
        manifest_path.write_text(json.dumps(TINY_MANIFEST))
        records = run_campaign(manifest).records
        baseline = write_baseline(tmp_path / "base.json", manifest, records)
        # identical rerun: clean gate
        diff = check_baseline(baseline, manifest_path)
        assert not diff.drifted
        # perturb the frozen copy: the gate must name the drifted cell
        payload = json.loads(baseline.read_text())
        payload["records"][0]["time"] *= 1.5
        baseline.write_text(json.dumps(payload))
        diff = check_baseline(baseline, manifest_path)
        assert diff.drifted and len(diff.changed) == 1

    def test_context_mismatch_rejected(self, tmp_path):
        manifest = manifest_from_dict(TINY_MANIFEST)
        manifest_path = tmp_path / "tiny.json"
        manifest_path.write_text(json.dumps(TINY_MANIFEST))
        baseline = write_baseline(
            tmp_path / "base.json", manifest, run_campaign(manifest).records
        )
        # same records, different frozen context: gate must refuse, not
        # report misleading cell-level drift
        payload = json.loads(baseline.read_text())
        payload["seed"] = 99
        baseline.write_text(json.dumps(payload))
        with pytest.raises(RecordSetError, match="seed"):
            check_baseline(baseline, manifest_path)

    def test_baseline_is_deterministic_json(self, tmp_path):
        manifest = manifest_from_dict(TINY_MANIFEST)
        records = run_campaign(manifest).records
        p1 = write_baseline(tmp_path / "b1.json", manifest, records)
        p2 = write_baseline(tmp_path / "b2.json", manifest, records)
        assert p1.read_text() == p2.read_text()


# -- artifacts ---------------------------------------------------------------


class TestArtifacts:
    def test_render_report_writes_everything(self, tmp_path):
        records = synthetic_records()
        written = render_report(records, tmp_path, name="t", source="synthetic")
        names = {p.name for p in written}
        assert {"heatmap_bcast.svg", "heatmap_allreduce.svg",
                "boxplot_improvement.svg", "index.md", "index.html"} == names
        index = (tmp_path / "index.md").read_text()
        digest = records_digest(records)
        assert digest in index
        for figure in names - {"index.md", "index.html"}:
            assert figure in index
            assert figure in (tmp_path / "index.html").read_text()

    def test_render_report_deterministic(self, tmp_path):
        records = synthetic_records()
        render_report(records, tmp_path / "r1", name="t", source="s")
        render_report(records, tmp_path / "r2", name="t", source="s")
        for p1 in sorted((tmp_path / "r1").iterdir()):
            p2 = tmp_path / "r2" / p1.name
            assert p1.read_bytes() == p2.read_bytes()

    def test_multi_system_records_render_per_system(self, tmp_path):
        # two sub-torus tags at the same p must not merge into one heatmap
        records = [
            SweepRecord("fugaku:4x4x4", "bcast", "bine-torus", "bine",
                        64, 1024, 1.0e-6, 8.0),
            SweepRecord("fugaku:4x4x4", "bcast", "binomial", "binomial",
                        64, 1024, 2.0e-6, 9.0),
            SweepRecord("fugaku:8x8", "bcast", "bine-torus", "bine",
                        64, 1024, 3.0e-6, 8.0),
            SweepRecord("fugaku:8x8", "bcast", "binomial", "binomial",
                        64, 1024, 1.5e-6, 9.0),
        ]
        written = render_report(records, tmp_path, name="t", source="s")
        names = {p.name for p in written}
        assert "heatmap_bcast_fugaku-4x4x4.svg" in names
        assert "heatmap_bcast_fugaku-8x8.svg" in names
        assert "heatmap_bcast.svg" not in names
        # each figure reflects only its own sub-torus' winner
        svg_4x4x4 = (tmp_path / "heatmap_bcast_fugaku-4x4x4.svg").read_text()
        svg_8x8 = (tmp_path / "heatmap_bcast_fugaku-8x8.svg").read_text()
        assert ">2.00</text>" in svg_4x4x4  # bine wins 4x4x4 at ratio 2
        assert ">N</text>" in svg_8x8       # binomial wins 8x8

    def test_digest_order_independent(self):
        records = synthetic_records()
        assert records_digest(records) == records_digest(records[::-1])
        assert records_digest(records) != records_digest(records[:-1])


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        DATA_DIR.mkdir(exist_ok=True)
        for path, svg in render_goldens().items():
            path.write_text(svg + "\n")
            print(f"wrote {path}")
    else:
        print(__doc__)
